package analysis_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"liberty/internal/analysis"
	_ "liberty/internal/ccl" // register templates
	core "liberty/internal/core"
	"liberty/internal/lss"
	_ "liberty/internal/pcl"
)

// relay is a minimal test module: one in, one out, with handlers, so the
// handshake pass has nothing to say about it.
type relay struct{ core.Base }

func buildRelay(noDefault bool) core.BuildFn {
	return func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
		m := &relay{}
		m.Init(name, m)
		m.AddInPort("in", core.PortOpts{DefaultAck: core.No, NoDefault: noDefault})
		m.AddOutPort("out", core.PortOpts{NoDefault: noDefault})
		m.OnReact(func() {})
		m.OnCycleEnd(func() {})
		return m, nil
	}
}

// leaky declares handshake hazards on purpose: an output that commits
// enable unconditionally and an input acknowledged with no handler to
// observe the data.
type leaky struct{ core.Base }

func buildLeaky(b *core.Builder, name string, p core.Params) (core.Instance, error) {
	m := &leaky{}
	m.Init(name, m)
	m.AddInPort("in") // engine default acks firm data; no handlers below
	m.AddOutPort("out", core.PortOpts{DefaultEnable: core.Yes})
	return m, nil
}

func init() {
	core.Register(&core.Template{Name: "ana.relay", Doc: "test relay", Build: buildRelay(false)})
	core.Register(&core.Template{Name: "ana.nodefault", Doc: "test relay demanding explicit control", Build: buildRelay(true)})
	core.Register(&core.Template{Name: "ana.leaky", Doc: "test module with handshake hazards", Build: buildLeaky})
}

func lint(t *testing.T, src string) *analysis.Report {
	t.Helper()
	return analysis.LintSource("test.lss", src)
}

// codes extracts the diagnostic codes of a report in order.
func codes(r *analysis.Report) []string {
	out := make([]string, 0, r.Len())
	for _, d := range r.Diags {
		out = append(out, d.Code)
	}
	return out
}

func findCode(r *analysis.Report, code string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range r.Diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func TestCleanPipelineLintsClean(t *testing.T) {
	src := `
instance src : pcl.source(rate = 1.0, count = 20);
instance q   : pcl.queue(capacity = 4);
instance snk : pcl.sink(keep = true);
src.out -> q.in;
q.out -> snk.in;
`
	r := lint(t, src)
	if r.Len() != 0 {
		var sb strings.Builder
		r.WriteText(&sb)
		t.Fatalf("clean pipeline produced diagnostics:\n%s", sb.String())
	}
}

func TestUnconnectedOptionalPortsReported(t *testing.T) {
	src := `
instance src : pcl.source(count = 5);
instance q   : pcl.queue(capacity = 2);
instance snk : pcl.sink();
src.out -> snk.in;
`
	r := lint(t, src)
	diags := findCode(r, "LSE001")
	if len(diags) != 2 {
		t.Fatalf("want 2 LSE001 for q.in and q.out, got %d: %v", len(diags), codes(r))
	}
	wantWhere := map[string]string{
		"q.in":  "ack firm data", // queue overrides DefaultAck=No
		"q.out": "enable follows data",
	}
	for _, d := range diags {
		if d.Severity != analysis.Info {
			t.Errorf("%s: severity %s, want info", d.Where, d.Severity)
		}
		if _, ok := wantWhere[d.Where]; !ok {
			t.Errorf("unexpected LSE001 anchor %q", d.Where)
		}
		if d.File != "test.lss" || d.Line != 3 {
			t.Errorf("%s: position %s:%d, want test.lss:3", d.Where, d.File, d.Line)
		}
	}
	// q.in declares DefaultAck=No, so the message names the override,
	// not the engine default.
	for _, d := range diags {
		if d.Where == "q.in" && !strings.Contains(d.Message, "DefaultAck=no") {
			t.Errorf("q.in message should name the DefaultAck override, got %q", d.Message)
		}
		if d.Where == "q.out" && !strings.Contains(d.Message, "enable follows data") {
			t.Errorf("q.out message should name the engine default, got %q", d.Message)
		}
	}
	// The isolated queue is also dead structure (no connections).
	if len(findCode(r, "LSE004")) != 1 {
		t.Errorf("want 1 LSE004 for the disconnected queue, got %v", codes(r))
	}
}

func TestBreakableCycleIsWarning(t *testing.T) {
	src := `
instance a : pcl.queue(capacity = 2);
instance b : pcl.queue(capacity = 2);
a.out -> b.in;
b.out -> a.in;
`
	r := lint(t, src)
	diags := findCode(r, "LSE002")
	if len(diags) != 1 {
		t.Fatalf("want 1 LSE002, got %v", codes(r))
	}
	d := diags[0]
	if d.Severity != analysis.Warning {
		t.Errorf("severity %s, want warning (cycle is breakable)", d.Severity)
	}
	for _, member := range []string{"a", "b"} {
		if !strings.Contains(d.Message, member) {
			t.Errorf("message does not name member %q: %s", member, d.Message)
		}
	}
	if !strings.Contains(d.Message, "breaks it at") {
		t.Errorf("message should name the break site: %s", d.Message)
	}
	// The loop also never reaches a sink: dead structure for both members.
	if len(findCode(r, "LSE004")) != 2 {
		t.Errorf("want 2 LSE004 (loop reaches no sink), got %v", codes(r))
	}
}

func TestUnbreakableCycleIsError(t *testing.T) {
	src := `
instance a : ana.nodefault();
instance b : ana.nodefault();
a.out -> b.in;
b.out -> a.in;
`
	r := lint(t, src)
	diags := findCode(r, "LSE002")
	if len(diags) != 1 {
		t.Fatalf("want 1 LSE002, got %v", codes(r))
	}
	d := diags[0]
	if d.Severity != analysis.Error {
		t.Fatalf("severity %s, want error (no valid break)", d.Severity)
	}
	if !strings.Contains(d.Message, "no valid break") ||
		!strings.Contains(d.Message, "a, b") {
		t.Errorf("message should report no valid break and name members: %s", d.Message)
	}
}

func TestHandshakeHazards(t *testing.T) {
	src := `
instance src : pcl.source(count = 5);
instance bad : ana.leaky();
instance snk : pcl.sink();
src.out -> bad.in;
bad.out -> snk.in;
`
	r := lint(t, src)
	diags := findCode(r, "LSE003")
	if len(diags) != 2 {
		t.Fatalf("want 2 LSE003 (unconditional enable + silently dropped input), got %v", codes(r))
	}
	var sawEnable, sawDropped bool
	for _, d := range diags {
		if strings.Contains(d.Message, "firm empty handshake") {
			sawEnable = true
		}
		if strings.Contains(d.Message, "silently dropped") {
			sawDropped = true
		}
	}
	if !sawEnable || !sawDropped {
		t.Errorf("missing hazard: enable=%v dropped=%v", sawEnable, sawDropped)
	}
}

func TestDuplicateDriverReportedOnce(t *testing.T) {
	src := `
instance src : pcl.source(count = 5);
instance snk : pcl.sink();
src.out -> snk.in;
src.out -> snk.in;
`
	r := lint(t, src)
	diags := findCode(r, "LSE003")
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 LSE003 for the duplicate pair, got %v", codes(r))
	}
	if !strings.Contains(diags[0].Message, "wired in parallel 2 times") {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
	if diags[0].Line != 4 {
		t.Errorf("anchored at line %d, want 4 (the first connection)", diags[0].Line)
	}
}

func TestHierarchyExportDiagnostics(t *testing.T) {
	src := `
module box() {
    instance q : pcl.queue(capacity = 2);
    export in  = q.in;
    export out = q.out;
}
instance src : pcl.source(count = 5);
instance b   : box();
instance snk : pcl.sink();
src.out -> b.in;
b.out -> snk.in;
`
	if r := lint(t, src); len(findCode(r, "LSE006")) != 0 {
		t.Fatalf("fully wired composite tripped LSE006: %v", codes(r))
	}
	// Drop the consumer of b.out: the export is bound to nothing.
	srcDangling := strings.Replace(src, "b.out -> snk.in;", "", 1)
	r := lint(t, srcDangling)
	diags := findCode(r, "LSE006")
	if len(diags) != 1 {
		t.Fatalf("want 1 LSE006 for the dangling export, got %v", codes(r))
	}
	if !strings.Contains(diags[0].Message, `export "out"`) {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
}

func TestParamHygiene(t *testing.T) {
	src := `
module m(depth = 2, unusedParam = 0) {
    instance q : pcl.queue(capacity = depth);
    export in  = q.in;
    export out = q.out;
}
let unusedLet = 7;
let n = 1;
instance src : pcl.source(count = 5);
instance p   : m(depth = n);
instance snk : pcl.sink();
src.out -> p.in;
p.out -> snk.in;
`
	r := lint(t, src)
	diags := findCode(r, "LSE005")
	if len(diags) != 2 {
		t.Fatalf("want 2 LSE005 (unused parameter + unused let), got %v:\n%s", codes(r), text(r))
	}
	var sawParam, sawLet bool
	for _, d := range diags {
		switch d.Where {
		case "unusedParam":
			sawParam = true
			if d.Severity != analysis.Warning {
				t.Errorf("unused parameter severity %s, want warning", d.Severity)
			}
		case "unusedLet":
			sawLet = true
			if d.Severity != analysis.Info {
				t.Errorf("unused let severity %s, want info", d.Severity)
			}
		}
	}
	if !sawParam || !sawLet {
		t.Errorf("missing diagnostics: param=%v let=%v", sawParam, sawLet)
	}
}

func TestShadowingDiagnostics(t *testing.T) {
	// Scoping is erased by elaboration, so run the spec pass directly on
	// the AST.
	f, err := lss.ParseFile("shadow.lss", `
let n = 2;
let m = n;
for n in 0 .. m {
    let unused = 1;
}
let idx = 3;
`)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	r := analysis.AnalyzeSpec(f)
	diags := findCode(r, "LSE005")
	var sawShadow, sawIdx bool
	for _, d := range diags {
		if d.Where == "n" && strings.Contains(d.Message, "shadows the let") {
			sawShadow = true
			if d.Line != 4 {
				t.Errorf("shadow diagnostic at line %d, want 4", d.Line)
			}
		}
		if d.Where == "idx" && strings.Contains(d.Message, "reserved") {
			sawIdx = true
		}
	}
	if !sawShadow || !sawIdx {
		t.Fatalf("missing diagnostics (shadow=%v idx=%v):\n%s", sawShadow, sawIdx, text(r))
	}
}

func TestDeadStructureDetection(t *testing.T) {
	// src feeds a relay ring that never reaches the sink; a separate
	// chain does. The ring instances are dead structure.
	src := `
instance src  : pcl.source(count = 5);
instance r1   : ana.relay();
instance r2   : ana.relay();
instance src2 : pcl.source(count = 5);
instance snk  : pcl.sink();
src.out -> r1.in;
r1.out -> r2.in;
r2.out -> r1.in;
src2.out -> snk.in;
`
	r := lint(t, src)
	dead := map[string]bool{}
	for _, d := range findCode(r, "LSE004") {
		if d.Severity == analysis.Warning {
			dead[d.Where] = true
		}
	}
	for _, want := range []string{"src", "r1", "r2"} {
		if !dead[want] {
			t.Errorf("%s should be dead structure (never reaches a sink); report:\n%s", want, text(r))
		}
	}
	if dead["src2"] || dead["snk"] {
		t.Errorf("live chain flagged dead; report:\n%s", text(r))
	}
}

func TestParseErrorBecomesDiagnostic(t *testing.T) {
	r := analysis.LintSource("bad.lss", "instance src : pcl.source(count = 5);\ninstance ;")
	diags := findCode(r, "LSE000")
	if len(diags) != 1 {
		t.Fatalf("want 1 LSE000, got %v", codes(r))
	}
	d := diags[0]
	if d.Severity != analysis.Error || d.File != "bad.lss" || d.Line != 2 {
		t.Errorf("got %+v, want error at bad.lss:2", d)
	}
}

func TestUnknownTemplateBecomesDiagnostic(t *testing.T) {
	r := analysis.LintSource("bad.lss", "instance x : no.such.template();")
	diags := findCode(r, "LSE000")
	if len(diags) != 1 {
		t.Fatalf("want 1 LSE000, got %v", codes(r))
	}
	if diags[0].Line != 1 || !strings.Contains(diags[0].Message, "no.such.template") {
		t.Errorf("diagnostic should point at line 1 and name the template: %+v", diags[0])
	}
}

func TestBadParameterTypeBecomesDiagnostic(t *testing.T) {
	r := analysis.LintSource("bad.lss", `instance src : pcl.source(count = "many");`)
	if n := r.CountAtLeast(analysis.Error); n == 0 {
		t.Fatalf("ill-typed parameter produced no error diagnostics:\n%s", text(r))
	}
}

func TestPragmaSuppression(t *testing.T) {
	src := `
instance q : pcl.queue(capacity = 2); # lse:ignore LSE001, LSE004
`
	r := analysis.LintSource("test.lss", src)
	if r.Len() != 0 {
		t.Fatalf("pragma on the declaring line should suppress all diagnostics, got:\n%s", text(r))
	}
	// Standalone pragma covers the next line.
	src = `
# lse:ignore
instance q : pcl.queue(capacity = 2);
`
	if r := analysis.LintSource("test.lss", src); r.Len() != 0 {
		t.Fatalf("standalone bare pragma should suppress the next line, got:\n%s", text(r))
	}
	// A pragma listing other codes suppresses only those.
	src = `
instance q : pcl.queue(capacity = 2); # lse:ignore LSE004
`
	r = analysis.LintSource("test.lss", src)
	if len(findCode(r, "LSE001")) != 2 || len(findCode(r, "LSE004")) != 0 {
		t.Fatalf("selective pragma mishandled: %v", codes(r))
	}
}

func TestStrictBuildFailsOnUnbreakableCycle(t *testing.T) {
	src := `
instance a : ana.nodefault();
instance b : ana.nodefault();
a.out -> b.in;
b.out -> a.in;
`
	_, err := lss.LoadFile("cycle.lss", src, nil, analysis.StrictOption(analysis.Error))
	if err == nil {
		t.Fatal("Build succeeded; want strict-analysis failure")
	}
	var se *analysis.StrictError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *analysis.StrictError: %v", err, err)
	}
	msg := err.Error()
	for _, want := range []string{"LSE002", "a, b", "no valid break"} {
		if !strings.Contains(msg, want) {
			t.Errorf("strict error should contain %q:\n%s", want, msg)
		}
	}
}

func TestStrictSeverityThreshold(t *testing.T) {
	// A breakable two-queue loop is warning severity: it passes strict
	// mode at Error but fails at Warning.
	src := `
instance a : pcl.queue(capacity = 2);
instance b : pcl.queue(capacity = 2);
a.out -> b.in;
b.out -> a.in;
`
	if _, err := lss.Load(src, nil, analysis.StrictOption(analysis.Error)); err != nil {
		t.Fatalf("breakable cycle should pass strict(error): %v", err)
	}
	if _, err := lss.Load(src, nil, analysis.StrictOption(analysis.Warning)); err == nil {
		t.Fatal("breakable cycle should fail strict(warning)")
	}
}

func TestAnalyzeSimOnGoNetlist(t *testing.T) {
	// Netlists assembled straight through the Go API analyze fine; the
	// diagnostics just carry no positions.
	b := core.NewBuilder()
	a, err := b.Instantiate("ana.relay", "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Instantiate("ana.relay", "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(a, "out", c, "in"); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(c, "out", a, "in"); err != nil {
		t.Fatal(err)
	}
	sim, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	r := analysis.AnalyzeSim(sim)
	diags := findCode(r, "LSE002")
	if len(diags) != 1 {
		t.Fatalf("want 1 LSE002, got %v", codes(r))
	}
	if diags[0].File != "" || diags[0].Line != 0 {
		t.Errorf("Go netlist diagnostic should be positionless, got %s:%d", diags[0].File, diags[0].Line)
	}
}

func TestActivityDiagnostics(t *testing.T) {
	// A reactive module with no connected input can never be gated by the
	// sparse scheduler: LSE007.
	src := `
instance r   : ana.relay();
instance snk : pcl.sink(keep = true);
r.out -> snk.in;
`
	r := lint(t, src)
	diags := findCode(r, "LSE007")
	if len(diags) != 1 || diags[0].Where != "r" {
		t.Fatalf("want 1 LSE007 on r, got %v:\n%s", codes(r), text(r))
	}
	if diags[0].Severity != analysis.Info {
		t.Errorf("LSE007 severity = %v, want info", diags[0].Severity)
	}

	// Feeding the input removes the diagnostic.
	connected := `
instance src : pcl.source(rate = 1.0, count = 5);
instance r   : ana.relay();
instance snk : pcl.sink(keep = true);
src.out -> r.in;
r.out -> snk.in;
`
	if r := lint(t, connected); len(findCode(r, "LSE007")) != 0 {
		t.Fatalf("connected relay tripped LSE007: %v", codes(r))
	}

	// MarkAutonomous declares the always-active intent and silences it.
	b := core.NewBuilder()
	a, err := b.Instantiate("ana.relay", "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Instantiate("ana.relay", "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(a, "out", c, "in"); err != nil {
		t.Fatal(err)
	}
	type autonomouser interface{ MarkAutonomous() }
	a.(autonomouser).MarkAutonomous()
	sim, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if r := analysis.AnalyzeSim(sim); len(findCode(r, "LSE007")) != 0 {
		t.Fatalf("autonomous instance tripped LSE007: %v", codes(r))
	}
}

func TestReportOrderingAndRenderers(t *testing.T) {
	r := &analysis.Report{}
	r.Add(analysis.Diagnostic{Code: "LSE004", Severity: analysis.Warning, File: "b.lss", Line: 2, Where: "x", Message: "m1"})
	r.Add(analysis.Diagnostic{Code: "LSE001", Severity: analysis.Info, File: "a.lss", Line: 9, Where: "y", Message: "m2"})
	r.Add(analysis.Diagnostic{Code: "LSE002", Severity: analysis.Error, File: "a.lss", Line: 9, Where: "z", Message: "m3"})
	r.Sort()
	if got := codes(r); got[0] != "LSE001" || got[1] != "LSE002" || got[2] != "LSE004" {
		t.Fatalf("sort order wrong: %v", got)
	}
	if max, ok := r.Max(); !ok || max != analysis.Error {
		t.Errorf("Max = %v,%v", max, ok)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	txt := sb.String()
	if !strings.Contains(txt, "a.lss:9: LSE001[info] y: m2") ||
		!strings.Contains(txt, "3 diagnostics: 1 error(s), 1 warning(s), 1 info") {
		t.Errorf("text rendering:\n%s", txt)
	}
	sb.Reset()
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Diagnostics []map[string]any `json:"diagnostics"`
		Errors      int              `json:"errors"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, sb.String())
	}
	if len(decoded.Diagnostics) != 3 || decoded.Errors != 1 {
		t.Errorf("JSON payload wrong: %s", sb.String())
	}
	if sev := decoded.Diagnostics[0]["severity"]; sev != "info" {
		t.Errorf("severity should marshal as its name, got %v", sev)
	}
}

func TestSeverityParsing(t *testing.T) {
	for name, want := range map[string]analysis.Severity{
		"info": analysis.Info, "warning": analysis.Warning,
		"warn": analysis.Warning, "ERROR": analysis.Error,
	} {
		got, err := analysis.ParseSeverity(name)
		if err != nil || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := analysis.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity accepted unknown name")
	}
}

func TestScheduleInfoUnconnectedPortsAndDot(t *testing.T) {
	src := `
instance src : pcl.source(count = 5);
instance q   : pcl.queue(capacity = 2);
instance snk : pcl.sink();
src.out -> q.in;
q.out -> snk.in;
instance lone : pcl.queue(capacity = 1);
`
	sim, err := lss.Load(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	got := sim.Schedule().UnconnectedPorts
	want := []string{"lone.in", "lone.out"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("UnconnectedPorts = %v, want %v", got, want)
	}
	var sb strings.Builder
	if err := core.WriteDot(&sb, sim); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	if !strings.Contains(dot, "__dangling") || !strings.Contains(dot, "style=dashed") {
		t.Errorf("DOT output missing dangling-port styling:\n%s", dot)
	}
}

func text(r *analysis.Report) string {
	var sb strings.Builder
	r.WriteText(&sb)
	return sb.String()
}

// TestPayloadSeamsReported covers LSE008's two arms: a scalar payload
// declaration that dies at a sink reading through the boxed Data path,
// and a connection forced onto the spill lane by mixed payload kinds.
// Both are info — the model is correct either way, just not on the fast
// lane — and a fully typed chain must stay silent.
func TestPayloadSeamsReported(t *testing.T) {
	t.Run("unspecified sink", func(t *testing.T) {
		src := `
instance src : pcl.source(count = 5, payload = "uint64");
instance r   : ana.relay();
instance snk : pcl.sink(payload = "uint64");
src.out -> r.in;
r.out -> snk.in;
`
		diags := findCode(lint(t, src), "LSE008")
		if len(diags) != 1 {
			t.Fatalf("want 1 LSE008 for the src->relay seam, got %v", diags)
		}
		if !strings.Contains(diags[0].Message, "boxed Data path") {
			t.Errorf("diagnostic should name the boxed read path: %s", diags[0].Message)
		}
		if !strings.Contains(diags[0].Message, "src.out") || !strings.Contains(diags[0].Message, "r.in") {
			t.Errorf("diagnostic should name both ports: %s", diags[0].Message)
		}
	})
	t.Run("mixed payload kinds", func(t *testing.T) {
		src := `
instance src : pcl.source(count = 5, payload = "uint64");
instance snk : pcl.sink();
src.out -> snk.in;
`
		diags := findCode(lint(t, src), "LSE008")
		if len(diags) != 1 {
			t.Fatalf("want 1 LSE008 for the mixed-kind connection, got %v", diags)
		}
		if !strings.Contains(diags[0].Message, "mixed payload kinds") {
			t.Errorf("diagnostic should report the kind mismatch: %s", diags[0].Message)
		}
	})
	t.Run("fully typed chain is silent", func(t *testing.T) {
		src := `
instance src : pcl.source(count = 5, payload = "uint64");
instance q   : pcl.queue(capacity = 4, payload = "uint64");
instance snk : pcl.sink(payload = "uint64");
src.out -> q.in;
q.out -> snk.in;
`
		if diags := findCode(lint(t, src), "LSE008"); len(diags) != 0 {
			t.Fatalf("fully typed chain should produce no LSE008, got %v", diags)
		}
	})
}
