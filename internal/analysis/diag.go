package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	core "liberty/internal/core"
)

// Severity ranks a diagnostic's impact. The integer values double as
// process exit codes (cmd/lslint exits with the report's maximum).
type Severity int

const (
	// Info reports structure worth knowing about that needs no action —
	// e.g. an optional port deliberately left unconnected.
	Info Severity = 0
	// Warning reports likely-unintended structure the engine will still
	// simulate deterministically.
	Warning Severity = 1
	// Error reports structure with no well-defined behavior, such as a
	// combinational cycle without a valid break site.
	Error Severity = 2
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity converts a severity name ("info", "warning", "error").
func ParseSeverity(name string) (Severity, error) {
	switch strings.ToLower(name) {
	case "info":
		return Info, nil
	case "warning", "warn":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return 0, fmt.Errorf("unknown severity %q (want info, warning or error)", name)
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic is one finding: a stable code, a severity, the construct it
// is anchored to, and — when the netlist came from a spec — a source
// position.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	File     string   `json:"file,omitempty"`
	Line     int      `json:"line,omitempty"`
	// Where names the anchor construct: "instance", "instance.port" or a
	// connection description.
	Where   string `json:"where,omitempty"`
	Message string `json:"message"`
}

// Pos returns the diagnostic's source position as a core.Pos.
func (d Diagnostic) Pos() core.Pos { return core.Pos{File: d.File, Line: d.Line} }

func (d Diagnostic) String() string {
	var sb strings.Builder
	if p := d.Pos(); !p.IsZero() {
		sb.WriteString(p.String())
		sb.WriteString(": ")
	}
	fmt.Fprintf(&sb, "%s[%s]", d.Code, d.Severity)
	if d.Where != "" {
		sb.WriteString(" ")
		sb.WriteString(d.Where)
	}
	sb.WriteString(": ")
	sb.WriteString(d.Message)
	return sb.String()
}

// Report is an ordered collection of diagnostics.
type Report struct {
	Diags []Diagnostic
}

// Add appends a diagnostic.
func (r *Report) Add(d Diagnostic) { r.Diags = append(r.Diags, d) }

// Addf appends a diagnostic with a formatted message.
func (r *Report) Addf(code string, sev Severity, pos core.Pos, where, format string, args ...any) {
	r.Add(Diagnostic{
		Code: code, Severity: sev,
		File: pos.File, Line: pos.Line,
		Where: where, Message: fmt.Sprintf(format, args...),
	})
}

// Len returns the number of diagnostics.
func (r *Report) Len() int { return len(r.Diags) }

// Max returns the highest severity present, or (0, false) for an empty
// report.
func (r *Report) Max() (Severity, bool) {
	if len(r.Diags) == 0 {
		return 0, false
	}
	max := r.Diags[0].Severity
	for _, d := range r.Diags[1:] {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max, true
}

// CountAtLeast returns how many diagnostics have severity >= min.
func (r *Report) CountAtLeast(min Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

// Sort puts diagnostics into the canonical deterministic order: by file,
// line, code, anchor, then message. Positionless diagnostics (pure Go
// netlists) sort before positioned ones of the same file name ("").
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Where != b.Where {
			return a.Where < b.Where
		}
		return a.Message < b.Message
	})
}

// WriteText renders the report one diagnostic per line, followed by a
// summary line, returning the first writer error.
func (r *Report) WriteText(w io.Writer) error {
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, d := range r.Diags {
		emit("%s\n", d)
	}
	var counts [Error + 1]int
	for _, d := range r.Diags {
		if d.Severity >= Info && d.Severity <= Error {
			counts[d.Severity]++
		}
	}
	emit("%d diagnostics: %d error(s), %d warning(s), %d info\n",
		len(r.Diags), counts[Error], counts[Warning], counts[Info])
	return err
}

// WriteJSON renders the report as an indented JSON object with a
// "diagnostics" array and per-severity counts.
func (r *Report) WriteJSON(w io.Writer) error {
	diags := r.Diags
	if diags == nil {
		diags = []Diagnostic{}
	}
	payload := struct {
		Diagnostics []Diagnostic `json:"diagnostics"`
		Errors      int          `json:"errors"`
		Warnings    int          `json:"warnings"`
		Infos       int          `json:"infos"`
	}{Diagnostics: diags}
	for _, d := range diags {
		switch d.Severity {
		case Error:
			payload.Errors++
		case Warning:
			payload.Warnings++
		default:
			payload.Infos++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}
