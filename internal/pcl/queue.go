package pcl

import (
	"sort"

	core "liberty/internal/core"
)

// SelectFn orders a queue's occupied entries for dequeue. It receives the
// entries oldest-first and returns the indices eligible to leave this
// cycle, in offer order. The default (nil) is FIFO: 0, 1, 2, …
//
// This is the algorithmic parameter that turns the one template into an
// instruction window (select ready instructions out of order), a reorder
// buffer (select the oldest, only when complete) or a router I/O buffer
// (plain FIFO).
type SelectFn func(entries []any) []int

// Queue is a capacity-bounded buffer with multi-connection enqueue and
// dequeue ports and proper handshake backpressure. A full queue refuses
// new entries this cycle even if it is draining (classic synchronous FIFO
// semantics).
//
// Ports:
//
//	in  (In,  any width) — enqueue; acked while free slots remain
//	out (Out, any width) — dequeue; connection j is offered the j'th
//	                       selected entry
type Queue struct {
	core.Base
	In  *core.Port
	Out *core.Port

	capacity int
	selectFn SelectFn
	entries  []any
	offered  []int // entry index offered on out conn j this cycle
	selBuf   []int // scratch for the default FIFO selection

	cTransIn  *core.Counter
	cTransOut *core.Counter
	cFullStal *core.Counter
	hOcc      *core.Histogram
}

// NewQueue constructs a queue. Parameters:
//
//	capacity (int, default 8)     — maximum entries held
//	select   (SelectFn, optional) — dequeue selection policy
func NewQueue(name string, p core.Params) (*Queue, error) {
	q := &Queue{
		capacity: p.Int("capacity", 8),
		selectFn: core.Fn[SelectFn](p, "select", nil),
	}
	if q.capacity < 1 {
		return nil, &core.ParamError{Param: "capacity", Detail: "must be >= 1"}
	}
	q.Init(name, q)
	q.In = q.AddInPort("in", core.PortOpts{DefaultAck: core.No})
	q.Out = q.AddOutPort("out")
	q.OnCycleStart(q.cycleStart)
	q.OnReact(q.react)
	q.OnCycleEnd(q.cycleEnd)
	return q, nil
}

// Len returns the current occupancy.
func (q *Queue) Len() int { return len(q.entries) }

// Cap returns the queue's capacity.
func (q *Queue) Cap() int { return q.capacity }

// Entries returns the live entries oldest-first (shared slice; callers
// must not mutate).
func (q *Queue) Entries() []any { return q.entries }

func (q *Queue) lazyStats() {
	if q.cTransIn == nil {
		q.cTransIn = q.Counter("enqueues")
		q.cTransOut = q.Counter("dequeues")
		q.cFullStal = q.Counter("full_stalls")
		q.hOcc = q.Histogram("occupancy")
	}
}

func (q *Queue) cycleStart() {
	q.lazyStats()
	q.hOcc.Observe(float64(len(q.entries)))
	// Offer selected entries downstream.
	sel := q.selected()
	q.offered = q.offered[:0]
	for j := 0; j < q.Out.Width(); j++ {
		if j < len(sel) {
			q.offered = append(q.offered, sel[j])
			q.Out.Send(j, q.entries[sel[j]])
			q.Out.Enable(j)
		} else {
			q.Out.SendNothing(j)
			q.Out.Disable(j)
		}
	}
}

func (q *Queue) selected() []int {
	if q.selectFn == nil {
		if cap(q.selBuf) < len(q.entries) {
			q.selBuf = make([]int, len(q.entries))
		}
		sel := q.selBuf[:len(q.entries)]
		for i := range sel {
			sel[i] = i
		}
		return sel
	}
	sel := q.selectFn(q.entries)
	seen := make(map[int]bool, len(sel))
	out := sel[:0]
	for _, i := range sel {
		if i < 0 || i >= len(q.entries) || seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	return out
}

func (q *Queue) react() {
	// Accept arrivals in connection order while space remains. Capacity is
	// judged against start-of-cycle occupancy: same-cycle dequeues do not
	// free space.
	free := q.capacity - len(q.entries)
	for i := 0; i < q.In.Width(); i++ {
		if q.In.AckStatus(i).Known() {
			if q.In.AckStatus(i) == core.Yes {
				free--
			}
			continue
		}
		switch q.In.DataStatus(i) {
		case core.Unknown:
			return // later connections must wait to preserve order
		case core.No:
			q.In.Nack(i)
		case core.Yes:
			if free > 0 {
				q.In.Ack(i)
				free--
			} else {
				q.In.Nack(i)
			}
		}
	}
}

func (q *Queue) cycleEnd() {
	// Remove transferred entries, highest entry index first so earlier
	// removals do not shift later ones.
	var gone []int
	for j := range q.offered {
		if q.Out.Transferred(j) {
			gone = append(gone, q.offered[j])
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gone)))
	for _, idx := range gone {
		q.entries = append(q.entries[:idx], q.entries[idx+1:]...)
		q.cTransOut.Inc()
	}
	// Then append accepted arrivals in connection order.
	for i := 0; i < q.In.Width(); i++ {
		if v, ok := q.In.TransferredData(i); ok {
			q.entries = append(q.entries, v)
			q.cTransIn.Inc()
		} else if q.In.DataStatus(i) == core.Yes && q.In.EnableStatus(i) == core.Yes {
			q.cFullStal.Inc()
		}
	}
}

func init() {
	core.Register(&core.Template{
		Name: "pcl.queue",
		Doc:  "capacity-bounded buffer with algorithmic dequeue selection",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewQueue(name, p)
		},
	})
}
