package pcl

import (
	core "liberty/internal/core"
)

// SelectFn orders a queue's occupied entries for dequeue. It receives the
// entries oldest-first and returns the indices eligible to leave this
// cycle, in offer order. The default (nil) is FIFO: 0, 1, 2, …
//
// This is the algorithmic parameter that turns the one template into an
// instruction window (select ready instructions out of order), a reorder
// buffer (select the oldest, only when complete) or a router I/O buffer
// (plain FIFO).
type SelectFn func(entries []any) []int

// Queue is a capacity-bounded buffer with multi-connection enqueue and
// dequeue ports and proper handshake backpressure. A full queue refuses
// new entries this cycle even if it is draining (classic synchronous FIFO
// semantics).
//
// With payload="uint64" the queue declares PayloadUint64 on both ports,
// stores its entries unboxed and moves them via SendUint64 and
// TransferredUint64, making the steady-state enqueue/dequeue path
// allocation-free. A SelectFn still receives []any in typed mode (the
// entries are boxed into a reused scratch slice per call); latency- or
// allocation-critical typed models should keep the default FIFO policy.
//
// Ports:
//
//	in  (In,  any width) — enqueue; acked while free slots remain
//	out (Out, any width) — dequeue; connection j is offered the j'th
//	                       selected entry
type Queue struct {
	core.Base
	In  *core.Port
	Out *core.Port

	capacity int
	selectFn SelectFn
	typed    bool   // payload="uint64": scalar fast-lane mode
	entries  []any  // boxed mode storage, oldest-first
	entriesU []uint64
	offered  []int // entry index offered on out conn j this cycle
	selBuf   []int // scratch for the default FIFO selection
	goneBuf  []int // scratch for cycleEnd's removal list
	boxBuf   []any // scratch for boxing typed entries for a SelectFn

	cTransIn  *core.Counter
	cTransOut *core.Counter
	cFullStal *core.Counter
	hOcc      *core.Histogram
}

// NewQueue constructs a queue. Parameters:
//
//	capacity (int, default 8)       — maximum entries held
//	select   (SelectFn, optional)   — dequeue selection policy
//	payload  (string, default "any") — "uint64" selects the scalar fast lane
func NewQueue(name string, p core.Params) (*Queue, error) {
	kind, err := payloadOpt(p)
	if err != nil {
		return nil, err
	}
	q := &Queue{
		capacity: p.Int("capacity", 8),
		selectFn: core.Fn[SelectFn](p, "select", nil),
		typed:    kind == core.PayloadUint64,
	}
	if q.capacity < 1 {
		return nil, &core.ParamError{Param: "capacity", Detail: "must be >= 1"}
	}
	q.Init(name, q)
	q.In = q.AddInPort("in", core.PortOpts{DefaultAck: core.No, Payload: kind})
	q.Out = q.AddOutPort("out", core.PortOpts{Payload: kind})
	q.OnCycleStart(q.cycleStart)
	q.OnReact(q.react)
	q.OnCycleEnd(q.cycleEnd)
	return q, nil
}

// Len returns the current occupancy.
func (q *Queue) Len() int {
	if q.typed {
		return len(q.entriesU)
	}
	return len(q.entries)
}

// Cap returns the queue's capacity.
func (q *Queue) Cap() int { return q.capacity }

// Entries returns the live entries oldest-first. In boxed mode this is
// the queue's own storage (shared slice; callers must not mutate); in
// typed mode each call boxes the scalar entries into a fresh slice.
func (q *Queue) Entries() []any {
	if !q.typed {
		return q.entries
	}
	out := make([]any, len(q.entriesU))
	for i, u := range q.entriesU {
		out[i] = u
	}
	return out
}

func (q *Queue) lazyStats() {
	if q.cTransIn == nil {
		q.cTransIn = q.Counter("enqueues")
		q.cTransOut = q.Counter("dequeues")
		q.cFullStal = q.Counter("full_stalls")
		q.hOcc = q.Histogram("occupancy")
	}
}

func (q *Queue) cycleStart() {
	q.lazyStats()
	q.hOcc.Observe(float64(q.Len()))
	// Offer selected entries downstream.
	sel := q.selected()
	q.offered = q.offered[:0]
	for j := 0; j < q.Out.Width(); j++ {
		if j < len(sel) {
			q.offered = append(q.offered, sel[j])
			if q.typed {
				q.Out.SendUint64(j, q.entriesU[sel[j]])
			} else {
				q.Out.Send(j, q.entries[sel[j]])
			}
			q.Out.Enable(j)
		} else {
			q.Out.SendNothing(j)
			q.Out.Disable(j)
		}
	}
}

func (q *Queue) selected() []int {
	n := q.Len()
	if q.selectFn == nil {
		if cap(q.selBuf) < n {
			q.selBuf = make([]int, n)
		}
		sel := q.selBuf[:n]
		for i := range sel {
			sel[i] = i
		}
		return sel
	}
	view := q.entries
	if q.typed {
		// Box the scalar entries into reused scratch for the policy's
		// []any view; custom selection trades away the zero-alloc path.
		if cap(q.boxBuf) < n {
			q.boxBuf = make([]any, n)
		}
		view = q.boxBuf[:n]
		for i, u := range q.entriesU {
			view[i] = u
		}
	}
	sel := q.selectFn(view)
	seen := make(map[int]bool, len(sel))
	out := sel[:0]
	for _, i := range sel {
		if i < 0 || i >= n || seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	return out
}

func (q *Queue) react() {
	// Accept arrivals in connection order while space remains. Capacity is
	// judged against start-of-cycle occupancy: same-cycle dequeues do not
	// free space.
	free := q.capacity - q.Len()
	for i := 0; i < q.In.Width(); i++ {
		if q.In.AckStatus(i).Known() {
			if q.In.AckStatus(i) == core.Yes {
				free--
			}
			continue
		}
		switch q.In.DataStatus(i) {
		case core.Unknown:
			return // later connections must wait to preserve order
		case core.No:
			q.In.Nack(i)
		case core.Yes:
			if free > 0 {
				q.In.Ack(i)
				free--
			} else {
				q.In.Nack(i)
			}
		}
	}
}

func (q *Queue) cycleEnd() {
	// Collect transferred entry indices into persistent scratch
	// (sort.Reverse over an interface would allocate every cycle), sort
	// ascending — the list arrives already ascending under the default
	// FIFO selection, making the insertion sort a single linear scan —
	// and remove them in one compaction pass over the entries instead of
	// one O(n) splice per removal.
	gone := q.goneBuf[:0]
	for j := range q.offered {
		if q.Out.Transferred(j) {
			gone = append(gone, q.offered[j])
		}
	}
	sortAscending(gone)
	q.goneBuf = gone
	if len(gone) > 0 {
		if q.typed {
			q.entriesU = compactU(q.entriesU, gone)
		} else {
			q.entries = compact(q.entries, gone)
		}
		for range gone {
			q.cTransOut.Inc()
		}
	}
	// Then append accepted arrivals in connection order.
	for i := 0; i < q.In.Width(); i++ {
		if q.typed {
			if u, ok := q.In.TransferredUint64(i); ok {
				q.entriesU = append(q.entriesU, u)
				q.cTransIn.Inc()
			} else if q.In.DataStatus(i) == core.Yes && q.In.EnableStatus(i) == core.Yes {
				q.cFullStal.Inc()
			}
			continue
		}
		if v, ok := q.In.TransferredData(i); ok {
			q.entries = append(q.entries, v)
			q.cTransIn.Inc()
		} else if q.In.DataStatus(i) == core.Yes && q.In.EnableStatus(i) == core.Yes {
			q.cFullStal.Inc()
		}
	}
}

// sortAscending sorts a small index slice in place — allocation-free,
// and linear on already-sorted input (the default FIFO selection order).
func sortAscending(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// compact removes the entries at the ascending index list gone in a
// single pass, preserving order.
func compact(entries []any, gone []int) []any {
	w, g := gone[0], 0
	for r := gone[0]; r < len(entries); r++ {
		if g < len(gone) && gone[g] == r {
			g++
			continue
		}
		entries[w] = entries[r]
		w++
	}
	for i := w; i < len(entries); i++ {
		entries[i] = nil // release references past the new length
	}
	return entries[:w]
}

// compactU is compact for the typed uint64 storage.
func compactU(entries []uint64, gone []int) []uint64 {
	w, g := gone[0], 0
	for r := gone[0]; r < len(entries); r++ {
		if g < len(gone) && gone[g] == r {
			g++
			continue
		}
		entries[w] = entries[r]
		w++
	}
	return entries[:w]
}

func init() {
	core.Register(&core.Template{
		Name: "pcl.queue",
		Doc:  "capacity-bounded buffer with algorithmic dequeue selection",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewQueue(name, p)
		},
	})
}
