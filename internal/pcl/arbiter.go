package pcl

import (
	"fmt"

	core "liberty/internal/core"
)

// PickFn chooses among competing requests. reqs[i] is the datum offered on
// input connection i (nil when input i has nothing this cycle); last is
// the most recently granted input (-1 initially). It returns the indices
// to grant, in priority order; out-of-range or nil-request indices are
// ignored.
type PickFn func(reqs []any, last int) []int

// Arbiter grants up to out-width competing inputs per cycle and forwards
// their data, nacking the losers. It is the same component whether it
// regulates access to a network link, a synchronization lock or a shared
// functional unit. Policies: "roundrobin" (default), "fixed" (lowest
// connection wins), "lru"-equivalent via roundrobin, or a custom PickFn.
type Arbiter struct {
	core.Base
	In  *core.Port
	Out *core.Port

	pick   PickFn
	last   int
	grants []int // grants[j] = input index granted on out conn j (-1 none)

	// scratch buffers reused across reactive invocations
	reqs      []any
	grantedBy []int // input index -> out conn (-1 = not granted)
	orderBuf  []int // scratch for the built-in policies

	cGrant  *core.Counter
	cDenied *core.Counter
}

// NewArbiter constructs an arbiter. Parameters:
//
//	policy (string, default "roundrobin") — "roundrobin" or "fixed"
//	pick   (PickFn, optional)             — custom policy; overrides policy
func NewArbiter(name string, p core.Params) (*Arbiter, error) {
	a := &Arbiter{last: -1}
	a.pick = core.Fn[PickFn](p, "pick", nil)
	if a.pick == nil {
		switch policy := p.Str("policy", "roundrobin"); policy {
		case "roundrobin":
			a.pick = a.pickRoundRobin
		case "fixed":
			a.pick = a.pickFixed
		default:
			return nil, &core.ParamError{Param: "policy", Detail: fmt.Sprintf("unknown policy %q", policy)}
		}
	}
	a.Init(name, a)
	// Both ports tolerate being left unconnected (partial specification):
	// with no outputs the arbiter refuses all requests; with no inputs it
	// offers nothing.
	a.In = a.AddInPort("in", core.PortOpts{DefaultAck: core.No, Payload: core.PayloadAny})
	a.Out = a.AddOutPort("out", core.PortOpts{Payload: core.PayloadAny})
	a.OnCycleStart(a.cycleStart)
	a.OnReact(a.react)
	a.OnCycleEnd(a.cycleEnd)
	return a, nil
}

// granted0 reports whether input i already holds a grant.
func granted0(grants []int, i int) bool {
	for _, g := range grants {
		if g == i {
			return true
		}
	}
	return false
}

func (a *Arbiter) pickFixed(reqs []any, last int) []int {
	out := a.orderBuf[:0]
	for i, r := range reqs {
		if r != nil {
			out = append(out, i)
		}
	}
	a.orderBuf = out
	return out
}

func (a *Arbiter) pickRoundRobin(reqs []any, last int) []int {
	n := len(reqs)
	out := a.orderBuf[:0]
	for k := 1; k <= n; k++ {
		i := (last + k) % n
		if reqs[i] != nil {
			out = append(out, i)
		}
	}
	a.orderBuf = out
	return out
}

func (a *Arbiter) cycleStart() {
	if a.cGrant == nil {
		a.cGrant = a.Counter("grants")
		a.cDenied = a.Counter("denials")
	}
	a.grants = a.grants[:0]
}

func (a *Arbiter) react() {
	// The decision needs every request known; until then, stay quiet
	// (monotonicity forbids changing a published grant).
	n := a.In.Width()
	if a.Out.Width() == 0 {
		for i := 0; i < n; i++ {
			if !a.In.AckStatus(i).Known() {
				a.In.Nack(i)
			}
		}
		return
	}
	if cap(a.reqs) < n {
		a.reqs = make([]any, n)
	}
	reqs := a.reqs[:n]
	for i := 0; i < n; i++ {
		reqs[i] = nil
		switch a.In.DataStatus(i) {
		case core.Unknown:
			return
		case core.Yes:
			reqs[i] = a.In.Data(i)
		}
	}
	if len(a.grants) == 0 && a.Out.DataStatus(0) == core.Unknown {
		order := a.pick(reqs, a.last)
		for _, i := range order {
			if i < 0 || i >= n || reqs[i] == nil || granted0(a.grants, i) {
				continue
			}
			if len(a.grants) == a.Out.Width() {
				break
			}
			j := len(a.grants)
			a.grants = append(a.grants, i)
			a.Out.Send(j, reqs[i])
			a.Out.Enable(j)
		}
		for j := len(a.grants); j < a.Out.Width(); j++ {
			a.Out.SendNothing(j)
			a.Out.Disable(j)
		}
	}
	// Mirror downstream acks back to the granted inputs; nack the rest.
	if cap(a.grantedBy) < n {
		a.grantedBy = make([]int, n)
	}
	granted := a.grantedBy[:n]
	for i := range granted {
		granted[i] = -1
	}
	for j, i := range a.grants {
		granted[i] = j
	}
	for i := 0; i < n; i++ {
		if a.In.AckStatus(i).Known() {
			continue
		}
		j := granted[i]
		if j < 0 {
			a.In.Nack(i)
			continue
		}
		switch a.Out.AckStatus(j) {
		case core.Yes:
			a.In.Ack(i)
		case core.No:
			a.In.Nack(i)
		}
	}
}

func (a *Arbiter) cycleEnd() {
	for j, i := range a.grants {
		if a.Out.Transferred(j) {
			a.cGrant.Inc()
			a.last = i
		}
	}
	for i := 0; i < a.In.Width(); i++ {
		if a.In.DataStatus(i) == core.Yes && !a.In.Transferred(i) {
			a.cDenied.Inc()
		}
	}
}

func init() {
	core.Register(&core.Template{
		Name: "pcl.arbiter",
		Doc:  "grants up to out-width of the competing inputs per cycle",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewArbiter(name, p)
		},
	})
}
