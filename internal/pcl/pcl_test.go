package pcl_test

import (
	"testing"

	core "liberty/internal/core"
	"liberty/internal/pcl"
	"liberty/internal/simtest"
)

func mustQueue(t *testing.T, name string, p core.Params) *pcl.Queue {
	t.Helper()
	q, err := pcl.NewQueue(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQueueFIFOOrder(t *testing.T) {
	prod := simtest.NewProducer("prod", simtest.IntSeq(20))
	q := mustQueue(t, "q", core.Params{"capacity": 4})
	cons := simtest.NewConsumer("cons", nil)
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(q)
	b.Add(cons)
	b.Connect(prod, "out", q, "in")
	b.Connect(q, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 30)
	simtest.EqualInts(t, cons.Ints(t), seq(20), "fifo order")
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestQueueCapacityBackpressure(t *testing.T) {
	prod := simtest.NewProducer("prod", simtest.IntSeq(10))
	q := mustQueue(t, "q", core.Params{"capacity": 3})
	// Consumer accepts nothing for the first 10 cycles.
	cons := simtest.NewConsumer("cons", func(cycle uint64, v any) bool { return cycle >= 10 })
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(q)
	b.Add(cons)
	b.Connect(prod, "out", q, "in")
	b.Connect(q, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 5)
	if got := q.Len(); got != 3 {
		t.Fatalf("queue holds %d entries, want 3 (capacity)", got)
	}
	if prod.Sent() != 3 {
		t.Fatalf("producer got %d acks, want 3", prod.Sent())
	}
	simtest.Run(t, sim, 25)
	simtest.EqualInts(t, cons.Ints(t), seq(10), "drained order")
	if sim.Stats().CounterValue("q.full_stalls") == 0 {
		t.Fatal("expected full_stalls to be counted")
	}
}

// TestQueueSelectFn demonstrates the paper's C1 reuse claim at the policy
// level: the same template dequeues out of order under a custom selection
// function (instruction-window behavior).
func TestQueueSelectFn(t *testing.T) {
	// Select odd values first, then evens, each oldest-first.
	oddFirst := pcl.SelectFn(func(entries []any) []int {
		var odds, evens []int
		for i, e := range entries {
			if e.(int)%2 == 1 {
				odds = append(odds, i)
			} else {
				evens = append(evens, i)
			}
		}
		return append(odds, evens...)
	})
	prod := simtest.NewProducer("prod", simtest.IntSeq(6))
	prod.Gate = func(cycle uint64) bool { return cycle < 6 } // stop offering after warm-up
	q := mustQueue(t, "q", core.Params{"capacity": 8, "select": oddFirst})
	// Accept only after the queue has buffered everything.
	cons := simtest.NewConsumer("cons", func(cycle uint64, v any) bool { return cycle >= 8 })
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(q)
	b.Add(cons)
	b.Connect(prod, "out", q, "in")
	b.Connect(q, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 20)
	simtest.EqualInts(t, cons.Ints(t), []int{1, 3, 5, 0, 2, 4}, "odd-first selection")
}

func TestQueueMultiEnqueueDequeue(t *testing.T) {
	// Two producers, two consumer connections: width scales bandwidth.
	p1 := simtest.NewProducer("p1", []any{1, 3, 5, 7})
	p2 := simtest.NewProducer("p2", []any{2, 4, 6, 8})
	q := mustQueue(t, "q", core.Params{"capacity": 8})
	cons := simtest.NewConsumer("cons", nil)
	b := core.NewBuilder()
	b.Add(p1)
	b.Add(p2)
	b.Add(q)
	b.Add(cons)
	b.Connect(p1, "out", q, "in")
	b.Connect(p2, "out", q, "in")
	b.Connect(q, "out", cons, "in")
	b.Connect(q, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 10)
	if len(cons.Got) != 8 {
		t.Fatalf("received %d values, want 8", len(cons.Got))
	}
	if v := sim.Stats().CounterValue("q.enqueues"); v != 8 {
		t.Fatalf("enqueues = %d, want 8", v)
	}
}

func TestArbiterRoundRobinFairness(t *testing.T) {
	b := core.NewBuilder()
	var prods []*simtest.Producer
	arb, err := pcl.NewArbiter("arb", nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(arb)
	for i := 0; i < 4; i++ {
		p := simtest.NewProducer(name("p", i), simtest.IntSeq(100))
		prods = append(prods, p)
		b.Add(p)
		b.Connect(p, "out", arb, "in")
	}
	cons := simtest.NewConsumer("cons", nil)
	b.Add(cons)
	b.Connect(arb, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 40)
	// 40 cycles, 4 contenders: each should win exactly 10.
	for i, p := range prods {
		if p.Sent() != 10 {
			t.Fatalf("producer %d won %d grants, want 10 (round-robin)", i, p.Sent())
		}
	}
}

func TestArbiterFixedPriorityStarves(t *testing.T) {
	b := core.NewBuilder()
	arb, err := pcl.NewArbiter("arb", core.Params{"policy": "fixed"})
	if err != nil {
		t.Fatal(err)
	}
	b.Add(arb)
	hi := simtest.NewProducer("hi", simtest.IntSeq(100))
	lo := simtest.NewProducer("lo", simtest.IntSeq(100))
	b.Add(hi)
	b.Add(lo)
	b.Connect(hi, "out", arb, "in")
	b.Connect(lo, "out", arb, "in")
	cons := simtest.NewConsumer("cons", nil)
	b.Add(cons)
	b.Connect(arb, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 20)
	if hi.Sent() != 20 || lo.Sent() != 0 {
		t.Fatalf("fixed priority: hi=%d lo=%d, want 20/0", hi.Sent(), lo.Sent())
	}
}

func TestArbiterCustomPick(t *testing.T) {
	// Grant the highest-valued request (a max-arbiter).
	maxPick := pcl.PickFn(func(reqs []any, last int) []int {
		best, bestV := -1, -1
		for i, r := range reqs {
			if r == nil {
				continue
			}
			if v := r.(int); v > bestV {
				best, bestV = i, v
			}
		}
		if best < 0 {
			return nil
		}
		return []int{best}
	})
	b := core.NewBuilder()
	arb, err := pcl.NewArbiter("arb", core.Params{"pick": maxPick})
	if err != nil {
		t.Fatal(err)
	}
	b.Add(arb)
	small := simtest.NewProducer("small", []any{1, 1, 1})
	big := simtest.NewProducer("big", []any{9, 9, 9})
	b.Add(small)
	b.Add(big)
	b.Connect(small, "out", arb, "in")
	b.Connect(big, "out", arb, "in")
	cons := simtest.NewConsumer("cons", nil)
	b.Add(cons)
	b.Connect(arb, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 3)
	simtest.EqualInts(t, cons.Ints(t), []int{9, 9, 9}, "max-arbiter grants")
}

func TestDelayExactLatency(t *testing.T) {
	prod := simtest.NewProducer("prod", simtest.IntSeq(5))
	d, err := pcl.NewDelay("d", core.Params{"latency": 3, "capacity": 8})
	if err != nil {
		t.Fatal(err)
	}
	cons := simtest.NewConsumer("cons", nil)
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(d)
	b.Add(cons)
	b.Connect(prod, "out", d, "in")
	b.Connect(d, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 12)
	simtest.EqualInts(t, cons.Ints(t), seq(5), "delayed order")
	// Item accepted at cycle c departs at c+3: first item accepted cycle 0
	// arrives cycle 3.
	for i, at := range cons.GotAt {
		if want := uint64(i + 3); at != want {
			t.Fatalf("item %d arrived at cycle %d, want %d", i, at, want)
		}
	}
}

func TestDelayCapacityOne(t *testing.T) {
	// capacity 1, latency 2: throughput limited to one item per 2 cycles.
	prod := simtest.NewProducer("prod", simtest.IntSeq(4))
	d, err := pcl.NewDelay("d", core.Params{"latency": 2, "capacity": 1})
	if err != nil {
		t.Fatal(err)
	}
	cons := simtest.NewConsumer("cons", nil)
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(d)
	b.Add(cons)
	b.Connect(prod, "out", d, "in")
	b.Connect(d, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 20)
	if len(cons.Got) != 4 {
		t.Fatalf("received %d, want 4", len(cons.Got))
	}
	for i := 1; i < len(cons.GotAt); i++ {
		if gap := cons.GotAt[i] - cons.GotAt[i-1]; gap < 2 {
			t.Fatalf("arrivals %d apart, want >= 2 (capacity-1 delay)", gap)
		}
	}
}

func TestMemArrayReadWrite(t *testing.T) {
	reqs := []any{
		pcl.MemReq{Op: pcl.MemWrite, Addr: 0x40, Data: 123, Tag: "w"},
		pcl.MemReq{Op: pcl.MemRead, Addr: 0x40, Tag: "r"},
	}
	prod := simtest.NewProducer("prod", reqs)
	m, err := pcl.NewMemArray("mem", core.Params{"words": 64, "latency": 2})
	if err != nil {
		t.Fatal(err)
	}
	cons := simtest.NewConsumer("cons", nil)
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(m)
	b.Add(cons)
	b.Connect(prod, "out", m, "req")
	b.Connect(m, "resp", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 10)
	if len(cons.Got) != 2 {
		t.Fatalf("got %d responses, want 2", len(cons.Got))
	}
	w := cons.Got[0].(pcl.MemResp)
	r := cons.Got[1].(pcl.MemResp)
	if w.Tag != "w" || r.Tag != "r" {
		t.Fatalf("tags: %v, %v", w.Tag, r.Tag)
	}
	if r.Data != 123 {
		t.Fatalf("read returned %d, want 123", r.Data)
	}
	if m.Peek(0x40/4) != 123 {
		t.Fatal("backing store not updated")
	}
}

func TestSourceRateAndCount(t *testing.T) {
	b := core.NewBuilder(core.WithSeed(7))
	src, err := pcl.NewSource("src", core.Params{"rate": 0.5, "count": 10})
	if err != nil {
		t.Fatal(err)
	}
	snk, err := pcl.NewSink("snk", core.Params{"keep": true})
	if err != nil {
		t.Fatal(err)
	}
	b.Add(src)
	b.Add(snk)
	b.Connect(src, "out", snk, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 100)
	if src.Injected() != 10 {
		t.Fatalf("injected %d, want 10 (count limit)", src.Injected())
	}
	if !src.Exhausted() {
		t.Fatal("source should be exhausted")
	}
	if snk.Received() != 10 {
		t.Fatalf("sink received %d, want 10", snk.Received())
	}
	// Sequence preserved.
	for i, v := range snk.Values() {
		if v.(int) != i {
			t.Fatalf("values %v not sequential", snk.Values())
		}
	}
}

type stampedVal struct {
	at uint64
	v  int
}

func (s stampedVal) InjectedAt() uint64 { return s.at }

func TestSinkLatencyMeasurement(t *testing.T) {
	b := core.NewBuilder()
	prod := simtest.NewProducer("prod", []any{
		stampedVal{at: 0, v: 1}, stampedVal{at: 0, v: 2},
	})
	d, err := pcl.NewDelay("d", core.Params{"latency": 4, "capacity": 4})
	if err != nil {
		t.Fatal(err)
	}
	snk, err := pcl.NewSink("snk", nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(prod)
	b.Add(d)
	b.Add(snk)
	b.Connect(prod, "out", d, "in")
	b.Connect(d, "out", snk, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 10)
	if snk.Received() != 2 {
		t.Fatalf("received %d, want 2", snk.Received())
	}
	if snk.MeanLatency() < 4 {
		t.Fatalf("mean latency %.1f, want >= 4", snk.MeanLatency())
	}
}

func TestTeeAllMode(t *testing.T) {
	prod := simtest.NewProducer("prod", simtest.IntSeq(5))
	tee, err := pcl.NewTee("tee", nil)
	if err != nil {
		t.Fatal(err)
	}
	c1 := simtest.NewConsumer("c1", nil)
	// c2 refuses odd cycles: in "all" mode both must accept, so delivery
	// happens only on even cycles and both sides see identical streams.
	c2 := simtest.NewConsumer("c2", func(cycle uint64, v any) bool { return cycle%2 == 0 })
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(tee)
	b.Add(c1)
	b.Add(c2)
	b.Connect(prod, "out", tee, "in")
	b.Connect(tee, "out", c1, "in")
	b.Connect(tee, "out", c2, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 12)
	simtest.EqualInts(t, c1.Ints(t), c2.Ints(t), "tee branches identical")
	if len(c1.Got) == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestRouteSteersByFunction(t *testing.T) {
	route := pcl.RouteFn(func(v any) int { return v.(int) % 3 })
	prod := simtest.NewProducer("prod", simtest.IntSeq(9))
	r, err := pcl.NewRoute("r", core.Params{"route": route})
	if err != nil {
		t.Fatal(err)
	}
	var cons [3]*simtest.Consumer
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(r)
	b.Connect(prod, "out", r, "in")
	for i := range cons {
		cons[i] = simtest.NewConsumer(name("c", i), nil)
		b.Add(cons[i])
		b.Connect(r, "out", cons[i], "in")
	}
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 12)
	simtest.EqualInts(t, cons[0].Ints(t), []int{0, 3, 6}, "lane 0")
	simtest.EqualInts(t, cons[1].Ints(t), []int{1, 4, 7}, "lane 1")
	simtest.EqualInts(t, cons[2].Ints(t), []int{2, 5, 8}, "lane 2")
}

func TestRouteOutOfRangeIsContractError(t *testing.T) {
	route := pcl.RouteFn(func(v any) int { return 99 })
	prod := simtest.NewProducer("prod", simtest.IntSeq(1))
	r, err := pcl.NewRoute("r", core.Params{"route": route})
	if err != nil {
		t.Fatal(err)
	}
	cons := simtest.NewConsumer("c", nil)
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(r)
	b.Add(cons)
	b.Connect(prod, "out", r, "in")
	b.Connect(r, "out", cons, "in")
	sim := simtest.Build(t, b)
	if err := sim.Step(); err == nil {
		t.Fatal("out-of-range route should fail the step")
	}
}

func TestFilterDropsNonMatching(t *testing.T) {
	pred := pcl.PredFn(func(v any) bool { return v.(int)%2 == 0 })
	prod := simtest.NewProducer("prod", simtest.IntSeq(10))
	f, err := pcl.NewFilter("f", core.Params{"pred": pred})
	if err != nil {
		t.Fatal(err)
	}
	cons := simtest.NewConsumer("c", nil)
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(f)
	b.Add(cons)
	b.Connect(prod, "out", f, "in")
	b.Connect(f, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 15)
	simtest.EqualInts(t, cons.Ints(t), []int{0, 2, 4, 6, 8}, "filtered stream")
	if f.Dropped() != 5 {
		t.Fatalf("dropped %d, want 5", f.Dropped())
	}
}

func TestTemplateRegistryInstantiation(t *testing.T) {
	// Every PCL template must be reachable through the registry (the LSS
	// path).
	b := core.NewBuilder()
	if _, err := b.Instantiate("pcl.queue", "q", core.Params{"capacity": 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Instantiate("pcl.source", "s", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Instantiate("pcl.sink", "k", nil); err != nil {
		t.Fatal(err)
	}
	q := b.Instantiate
	_ = q
	for _, name := range []string{"pcl.arbiter", "pcl.delay", "pcl.memarray", "pcl.tee"} {
		if _, ok := core.DefaultRegistry.Lookup(name); !ok {
			t.Errorf("template %s not registered", name)
		}
	}
	// Bad params surface as instantiate errors.
	if _, err := b.Instantiate("pcl.queue", "bad", core.Params{"capacity": 0}); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func name(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestClockGateDividesThroughput(t *testing.T) {
	prod := simtest.NewProducer("prod", simtest.IntSeq(10))
	g, err := pcl.NewClockGate("g", core.Params{"divisor": 4})
	if err != nil {
		t.Fatal(err)
	}
	cons := simtest.NewConsumer("cons", nil)
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(g)
	b.Add(cons)
	b.Connect(prod, "out", g, "in")
	b.Connect(g, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 41)
	// One transfer every 4 cycles: cycles 0,4,8,...,36 = at most 10+1.
	if len(cons.Got) != 10 {
		t.Fatalf("received %d values, want 10", len(cons.Got))
	}
	for i := 1; i < len(cons.GotAt); i++ {
		if gap := cons.GotAt[i] - cons.GotAt[i-1]; gap != 4 {
			t.Fatalf("arrivals %d cycles apart, want 4", gap)
		}
	}
	simtest.EqualInts(t, cons.Ints(t), seq(10), "order through clock gate")
}

func TestClockGatePhase(t *testing.T) {
	prod := simtest.NewProducer("prod", simtest.IntSeq(3))
	g, err := pcl.NewClockGate("g", core.Params{"divisor": 3, "phase": 2})
	if err != nil {
		t.Fatal(err)
	}
	cons := simtest.NewConsumer("cons", nil)
	b := core.NewBuilder()
	b.Add(prod)
	b.Add(g)
	b.Add(cons)
	b.Connect(prod, "out", g, "in")
	b.Connect(g, "out", cons, "in")
	sim := simtest.Build(t, b)
	simtest.Run(t, sim, 10)
	if len(cons.GotAt) == 0 || cons.GotAt[0] != 2 {
		t.Fatalf("first arrival at %v, want cycle 2 (phase)", cons.GotAt)
	}
}
