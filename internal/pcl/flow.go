package pcl

import (
	"fmt"

	core "liberty/internal/core"
)

// Tee broadcasts its single input to every output connection. In "all"
// mode (default) delivery is atomic: the enable signal is withheld until
// every output has acked, so either all receivers consume the datum or
// none do. In "any" mode each output's enable mirrors its own ack, and
// the input is accepted when at least one output accepts.
//
// Atomic broadcast requires receivers that ack on offered data without
// waiting for enable (as the queue and arbiter templates do); a receiver
// relying on engine default-ack resolves too late to participate in the
// atomicity decision.
type Tee struct {
	core.Base
	In  *core.Port
	Out *core.Port

	all bool
}

// NewTee constructs a tee. Parameters:
//
//	mode (string, default "all") — "all" or "any" acceptance
func NewTee(name string, p core.Params) (*Tee, error) {
	t := &Tee{}
	switch mode := p.Str("mode", "all"); mode {
	case "all":
		t.all = true
	case "any":
		t.all = false
	default:
		return nil, &core.ParamError{Param: "mode", Detail: fmt.Sprintf("unknown mode %q", mode)}
	}
	t.Init(name, t)
	t.In = t.AddInPort("in", core.PortOpts{MinWidth: 1, MaxWidth: 1, DefaultAck: core.No, Payload: core.PayloadAny})
	t.Out = t.AddOutPort("out", core.PortOpts{MinWidth: 1, Payload: core.PayloadAny})
	t.OnReact(t.react)
	return t, nil
}

func (t *Tee) react() {
	n := t.Out.Width()
	switch t.In.DataStatus(0) {
	case core.Unknown:
		return
	case core.No:
		for j := 0; j < n; j++ {
			if t.Out.DataStatus(j) == core.Unknown {
				t.Out.SendNothing(j)
				t.Out.Disable(j)
			}
		}
		if !t.In.AckStatus(0).Known() {
			t.In.Nack(0)
		}
		return
	}
	for j := 0; j < n; j++ {
		if t.Out.DataStatus(j) == core.Unknown {
			t.Out.Send(j, t.In.Data(0))
		}
	}
	inEn := t.In.EnableStatus(0)
	if inEn == core.No {
		for j := 0; j < n; j++ {
			if t.Out.EnableStatus(j) == core.Unknown {
				t.Out.Disable(j)
			}
		}
		if !t.In.AckStatus(0).Known() {
			t.In.Nack(0)
		}
		return
	}
	yes, no := 0, 0
	for j := 0; j < n; j++ {
		switch t.Out.AckStatus(j) {
		case core.Yes:
			yes++
		case core.No:
			no++
		}
	}
	if t.all {
		// Atomic: enable everyone only when everyone acked and the input
		// is firm; kill the cycle as soon as one output refuses.
		switch {
		case no > 0:
			for j := 0; j < n; j++ {
				if t.Out.EnableStatus(j) == core.Unknown {
					t.Out.Disable(j)
				}
			}
			if !t.In.AckStatus(0).Known() {
				t.In.Nack(0)
			}
		case yes == n && inEn == core.Yes:
			for j := 0; j < n; j++ {
				if t.Out.EnableStatus(j) == core.Unknown {
					t.Out.Enable(j)
				}
			}
			if !t.In.AckStatus(0).Known() {
				t.In.Ack(0)
			}
		}
		return
	}
	// "any": each output's enable mirrors its own ack once the input is
	// firm; the input is accepted when anyone accepts.
	if inEn != core.Yes {
		return
	}
	for j := 0; j < n; j++ {
		if t.Out.EnableStatus(j) != core.Unknown {
			continue
		}
		switch t.Out.AckStatus(j) {
		case core.Yes:
			t.Out.Enable(j)
		case core.No:
			t.Out.Disable(j)
		}
	}
	if !t.In.AckStatus(0).Known() {
		if yes > 0 {
			t.In.Ack(0)
		} else if no == n {
			t.In.Nack(0)
		}
	}
}

// RouteFn maps a datum to the output connection it should leave on.
type RouteFn func(v any) int

// Route steers its single input to exactly one of its outputs, chosen by
// the algorithmic route parameter — the building block of routing stages.
type Route struct {
	core.Base
	In  *core.Port
	Out *core.Port

	route RouteFn
}

// NewRoute constructs a router stage. Parameters:
//
//	route (RouteFn, required) — destination selector
func NewRoute(name string, p core.Params) (*Route, error) {
	r := &Route{route: core.Fn[RouteFn](p, "route", nil)}
	if r.route == nil {
		return nil, &core.ParamError{Param: "route", Detail: "required algorithmic parameter missing"}
	}
	r.Init(name, r)
	// The input may be left unconnected (partial specification): a
	// route stage with nothing upstream simply sends nothing.
	r.In = r.AddInPort("in", core.PortOpts{MaxWidth: 1, DefaultAck: core.No, Payload: core.PayloadAny})
	r.Out = r.AddOutPort("out", core.PortOpts{MinWidth: 1, Payload: core.PayloadAny})
	r.OnReact(r.react)
	return r, nil
}

func (r *Route) react() {
	n := r.Out.Width()
	if r.In.Width() == 0 {
		for j := 0; j < n; j++ {
			if r.Out.DataStatus(j) == core.Unknown {
				r.Out.SendNothing(j)
				r.Out.Disable(j)
			}
		}
		return
	}
	switch r.In.DataStatus(0) {
	case core.Unknown:
		return
	case core.No:
		for j := 0; j < n; j++ {
			if r.Out.DataStatus(j) == core.Unknown {
				r.Out.SendNothing(j)
				r.Out.Disable(j)
			}
		}
		if !r.In.AckStatus(0).Known() {
			r.In.Nack(0)
		}
		return
	}
	dest := r.route(r.In.Data(0))
	if dest < 0 || dest >= n {
		panic(&core.ContractError{Op: "route", Where: r.Name(),
			Detail: fmt.Sprintf("route function returned %d, out width is %d", dest, n)})
	}
	for j := 0; j < n; j++ {
		if r.Out.DataStatus(j) != core.Unknown {
			continue
		}
		if j == dest {
			r.Out.Send(j, r.In.Data(0))
			r.Out.Enable(j)
		} else {
			r.Out.SendNothing(j)
			r.Out.Disable(j)
		}
	}
	if !r.In.AckStatus(0).Known() {
		switch r.Out.AckStatus(dest) {
		case core.Yes:
			r.In.Ack(0)
		case core.No:
			r.In.Nack(0)
		}
	}
}

// PredFn decides whether a datum passes a Filter.
type PredFn func(v any) bool

// Filter passes data matching its predicate and silently consumes the
// rest (counting drops).
type Filter struct {
	core.Base
	In  *core.Port
	Out *core.Port

	pred  PredFn
	cDrop *core.Counter
}

// NewFilter constructs a filter. Parameters:
//
//	pred (PredFn, required) — pass predicate
func NewFilter(name string, p core.Params) (*Filter, error) {
	f := &Filter{pred: core.Fn[PredFn](p, "pred", nil)}
	if f.pred == nil {
		return nil, &core.ParamError{Param: "pred", Detail: "required algorithmic parameter missing"}
	}
	f.Init(name, f)
	f.In = f.AddInPort("in", core.PortOpts{MinWidth: 1, MaxWidth: 1, DefaultAck: core.No, Payload: core.PayloadAny})
	f.Out = f.AddOutPort("out", core.PortOpts{MinWidth: 1, MaxWidth: 1, Payload: core.PayloadAny})
	f.OnReact(f.react)
	f.OnCycleEnd(f.cycleEnd)
	return f, nil
}

// Dropped returns the number of values consumed without forwarding.
func (f *Filter) Dropped() int64 {
	if f.cDrop == nil {
		return 0
	}
	return f.cDrop.Value()
}

func (f *Filter) react() {
	switch f.In.DataStatus(0) {
	case core.Unknown:
		return
	case core.No:
		if f.Out.DataStatus(0) == core.Unknown {
			f.Out.SendNothing(0)
			f.Out.Disable(0)
		}
		if !f.In.AckStatus(0).Known() {
			f.In.Nack(0)
		}
		return
	}
	if f.pred(f.In.Data(0)) {
		if f.Out.DataStatus(0) == core.Unknown {
			f.Out.Send(0, f.In.Data(0))
			f.Out.Enable(0)
		}
		if !f.In.AckStatus(0).Known() {
			switch f.Out.AckStatus(0) {
			case core.Yes:
				f.In.Ack(0)
			case core.No:
				f.In.Nack(0)
			}
		}
		return
	}
	// Dropped: consume without forwarding.
	if f.Out.DataStatus(0) == core.Unknown {
		f.Out.SendNothing(0)
		f.Out.Disable(0)
	}
	if !f.In.AckStatus(0).Known() {
		f.In.Ack(0)
	}
}

func (f *Filter) cycleEnd() {
	if f.cDrop == nil {
		f.cDrop = f.Counter("dropped")
	}
	if f.In.Transferred(0) && !f.Out.Transferred(0) {
		f.cDrop.Inc()
	}
}

func init() {
	core.Register(&core.Template{
		Name: "pcl.tee",
		Doc:  "broadcasts one input to all outputs",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewTee(name, p)
		},
	})
	core.Register(&core.Template{
		Name: "pcl.route",
		Doc:  "steers input to one output via an algorithmic route function",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewRoute(name, p)
		},
	})
	core.Register(&core.Template{
		Name: "pcl.filter",
		Doc:  "passes matching data, consumes the rest",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewFilter(name, p)
		},
	})
}
