package pcl

import (
	core "liberty/internal/core"
)

// Delay is a fixed-latency pipeline: an entry accepted on in connection i
// is offered on out connection i exactly latency cycles later (later if
// back-pressured). Pairing in/out connections by index lets one instance
// model an n-lane pipeline. Capacity per lane bounds entries in flight.
//
// With payload="uint64" the delay declares PayloadUint64 on both ports
// and moves entries via SendUint64/TransferredUint64 without boxing.
type Delay struct {
	core.Base
	In  *core.Port
	Out *core.Port

	latency  int
	capacity int
	typed    bool // payload="uint64": scalar fast-lane mode
	lanes    [][]delayEntry

	cAccepted *core.Counter
	cDeparted *core.Counter
}

type delayEntry struct {
	v     any    // boxed mode payload
	u     uint64 // typed mode payload
	ready uint64 // first cycle the entry may depart
}

// NewDelay constructs a delay line. Parameters:
//
//	latency  (int, default 1) — cycles between acceptance and availability
//	capacity (int, default latency) — max in-flight entries per lane
//	payload  (string, default "any") — "uint64" selects the scalar fast lane
func NewDelay(name string, p core.Params) (*Delay, error) {
	kind, err := payloadOpt(p)
	if err != nil {
		return nil, err
	}
	d := &Delay{latency: p.Int("latency", 1), typed: kind == core.PayloadUint64}
	if d.latency < 1 {
		return nil, &core.ParamError{Param: "latency", Detail: "must be >= 1"}
	}
	d.capacity = p.Int("capacity", d.latency)
	if d.capacity < 1 {
		return nil, &core.ParamError{Param: "capacity", Detail: "must be >= 1"}
	}
	d.Init(name, d)
	d.In = d.AddInPort("in", core.PortOpts{DefaultAck: core.No, Payload: kind})
	d.Out = d.AddOutPort("out", core.PortOpts{Payload: kind})
	d.OnCycleStart(d.cycleStart)
	d.OnReact(d.react)
	d.OnCycleEnd(d.cycleEnd)
	return d, nil
}

// InFlight returns the number of entries in lane i.
func (d *Delay) InFlight(i int) int { return len(d.lanes[i]) }

func (d *Delay) lane(i int) []delayEntry {
	for len(d.lanes) <= i {
		d.lanes = append(d.lanes, nil)
	}
	return d.lanes[i]
}

func (d *Delay) cycleStart() {
	if d.cAccepted == nil {
		d.cAccepted = d.Counter("accepted")
		d.cDeparted = d.Counter("departed")
	}
	now := d.Now()
	for i := 0; i < d.Out.Width(); i++ {
		lane := d.lane(i)
		if len(lane) > 0 && now >= lane[0].ready {
			if d.typed {
				d.Out.SendUint64(i, lane[0].u)
			} else {
				d.Out.Send(i, lane[0].v)
			}
			d.Out.Enable(i)
		} else {
			d.Out.SendNothing(i)
			d.Out.Disable(i)
		}
	}
}

func (d *Delay) react() {
	for i := 0; i < d.In.Width(); i++ {
		if d.In.AckStatus(i).Known() {
			continue
		}
		switch d.In.DataStatus(i) {
		case core.Yes:
			if len(d.lane(i)) < d.capacity {
				d.In.Ack(i)
			} else {
				d.In.Nack(i)
			}
		case core.No:
			d.In.Nack(i)
		}
	}
}

func (d *Delay) cycleEnd() {
	for i := 0; i < d.Out.Width(); i++ {
		if d.Out.Transferred(i) {
			d.lanes[i] = d.lanes[i][1:]
			d.cDeparted.Inc()
		}
	}
	for i := 0; i < d.In.Width(); i++ {
		if d.typed {
			if u, ok := d.In.TransferredUint64(i); ok {
				d.lanes[i] = append(d.lane(i), delayEntry{u: u, ready: d.Now() + uint64(d.latency)})
				d.cAccepted.Inc()
			}
			continue
		}
		if v, ok := d.In.TransferredData(i); ok {
			d.lanes[i] = append(d.lane(i), delayEntry{v: v, ready: d.Now() + uint64(d.latency)})
			d.cAccepted.Inc()
		}
	}
}

func init() {
	core.Register(&core.Template{
		Name: "pcl.delay",
		Doc:  "fixed-latency multi-lane pipeline with backpressure",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewDelay(name, p)
		},
	})
}
