package pcl

import (
	"fmt"

	core "liberty/internal/core"
)

// MemOp distinguishes memory array operations.
type MemOp uint8

const (
	// MemRead requests the word at Addr.
	MemRead MemOp = iota
	// MemWrite stores Data at Addr.
	MemWrite
)

func (o MemOp) String() string {
	if o == MemRead {
		return "read"
	}
	return "write"
}

// MemReq is the request message understood by MemArray (and by the cache
// and coherence models built on top of it). Tag is carried through to the
// response unchanged so requesters can match replies.
type MemReq struct {
	Op   MemOp
	Addr uint32
	Data uint32
	Tag  any
}

// MemResp is MemArray's reply.
type MemResp struct {
	Addr uint32
	Data uint32
	Tag  any
}

// MemArray is a multi-ported memory with a fixed access latency: the
// primitive behind register files, cache data arrays, bus queuing buffers
// and scratchpads. Request connection i replies on response connection i.
//
// Ports:
//
//	req  (In)  — MemReq per connection
//	resp (Out) — MemResp, latency cycles after acceptance
type MemArray struct {
	core.Base
	Req  *core.Port
	Resp *core.Port

	words    []uint32
	latency  int
	pending  [][]delayEntry
	maxQueue int

	cReads  *core.Counter
	cWrites *core.Counter
}

// NewMemArray constructs a memory array. Parameters:
//
//	words   (int, default 1024) — array size in 32-bit words
//	latency (int, default 1)    — access latency in cycles
//	queue   (int, default 4)    — outstanding accesses per port
func NewMemArray(name string, p core.Params) (*MemArray, error) {
	m := &MemArray{
		words:    make([]uint32, p.Int("words", 1024)),
		latency:  p.Int("latency", 1),
		maxQueue: p.Int("queue", 4),
	}
	if len(m.words) < 1 {
		return nil, &core.ParamError{Param: "words", Detail: "must be >= 1"}
	}
	if m.latency < 1 {
		return nil, &core.ParamError{Param: "latency", Detail: "must be >= 1"}
	}
	m.Init(name, m)
	m.Req = m.AddInPort("req", core.PortOpts{DefaultAck: core.No, Payload: core.PayloadAny})
	m.Resp = m.AddOutPort("resp", core.PortOpts{Payload: core.PayloadAny})
	m.OnCycleStart(m.cycleStart)
	m.OnReact(m.react)
	m.OnCycleEnd(m.cycleEnd)
	return m, nil
}

// Peek returns the stored word at word-index idx (test/debug access).
func (m *MemArray) Peek(idx uint32) uint32 { return m.words[idx%uint32(len(m.words))] }

// Poke stores v at word-index idx (test/preload access).
func (m *MemArray) Poke(idx uint32, v uint32) { m.words[idx%uint32(len(m.words))] = v }

func (m *MemArray) port(i int) []delayEntry {
	for len(m.pending) <= i {
		m.pending = append(m.pending, nil)
	}
	return m.pending[i]
}

func (m *MemArray) cycleStart() {
	if m.cReads == nil {
		m.cReads = m.Counter("reads")
		m.cWrites = m.Counter("writes")
	}
	now := m.Now()
	for i := 0; i < m.Resp.Width(); i++ {
		q := m.port(i)
		if len(q) > 0 && now >= q[0].ready {
			m.Resp.Send(i, q[0].v)
			m.Resp.Enable(i)
		} else {
			m.Resp.SendNothing(i)
			m.Resp.Disable(i)
		}
	}
}

func (m *MemArray) react() {
	for i := 0; i < m.Req.Width(); i++ {
		if m.Req.AckStatus(i).Known() {
			continue
		}
		switch m.Req.DataStatus(i) {
		case core.Yes:
			if len(m.port(i)) < m.maxQueue {
				m.Req.Ack(i)
			} else {
				m.Req.Nack(i)
			}
		case core.No:
			m.Req.Nack(i)
		}
	}
}

func (m *MemArray) cycleEnd() {
	for i := 0; i < m.Resp.Width(); i++ {
		if m.Resp.Transferred(i) {
			m.pending[i] = m.pending[i][1:]
		}
	}
	for i := 0; i < m.Req.Width(); i++ {
		v, ok := m.Req.TransferredData(i)
		if !ok {
			continue
		}
		req, ok := v.(MemReq)
		if !ok {
			panic(&core.ContractError{Op: "memarray request", Where: m.Name(),
				Detail: fmt.Sprintf("expected pcl.MemReq, got %T", v)})
		}
		idx := (req.Addr / 4) % uint32(len(m.words))
		resp := MemResp{Addr: req.Addr, Tag: req.Tag}
		switch req.Op {
		case MemRead:
			resp.Data = m.words[idx]
			m.cReads.Inc()
		case MemWrite:
			m.words[idx] = req.Data
			resp.Data = req.Data
			m.cWrites.Inc()
		}
		m.pending[i] = append(m.port(i), delayEntry{v: resp, ready: m.Now() + uint64(m.latency)})
	}
}

func init() {
	core.Register(&core.Template{
		Name: "pcl.memarray",
		Doc:  "multi-ported latency-accurate memory array",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewMemArray(name, p)
		},
	})
}
