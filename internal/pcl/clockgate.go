package pcl

import (
	core "liberty/internal/core"
)

// ClockGate passes data only on cycles where its divided clock ticks
// (cycle % divisor == phase), refusing transfers otherwise. Placing one
// on a boundary models a slower clock domain — a DSP at half rate, a
// radio front end at an eighth — without any engine support for multiple
// clocks, the way LSE models mixed-rate systems.
type ClockGate struct {
	core.Base
	In  *core.Port
	Out *core.Port

	divisor uint64
	phase   uint64
}

// NewClockGate constructs a clock-domain gate. Parameters:
//
//	divisor (int, default 2) — pass on every divisor'th cycle
//	phase   (int, default 0) — offset of the passing cycle
func NewClockGate(name string, p core.Params) (*ClockGate, error) {
	g := &ClockGate{
		divisor: uint64(p.Int("divisor", 2)),
		phase:   uint64(p.Int("phase", 0)),
	}
	if g.divisor < 1 {
		return nil, &core.ParamError{Param: "divisor", Detail: "must be >= 1"}
	}
	g.Init(name, g)
	g.In = g.AddInPort("in", core.PortOpts{MinWidth: 1, MaxWidth: 1, DefaultAck: core.No, Payload: core.PayloadAny})
	g.Out = g.AddOutPort("out", core.PortOpts{MinWidth: 1, MaxWidth: 1, Payload: core.PayloadAny})
	g.OnReact(g.react)
	// The reactive handler reads Now(): whether data crosses depends on
	// the cycle number, not only on observed signals, so the sparse
	// scheduler must never gate it.
	g.MarkAutonomous()
	return g, nil
}

func (g *ClockGate) ticking() bool { return g.Now()%g.divisor == g.phase%g.divisor }

func (g *ClockGate) react() {
	if !g.ticking() {
		// The slow domain is not clocked this cycle: nothing crosses.
		if g.Out.DataStatus(0) == core.Unknown {
			g.Out.SendNothing(0)
			g.Out.Disable(0)
		}
		if !g.In.AckStatus(0).Known() {
			g.In.Nack(0)
		}
		return
	}
	switch g.In.DataStatus(0) {
	case core.Unknown:
		return
	case core.No:
		if g.Out.DataStatus(0) == core.Unknown {
			g.Out.SendNothing(0)
			g.Out.Disable(0)
		}
		if !g.In.AckStatus(0).Known() {
			g.In.Nack(0)
		}
		return
	}
	if g.Out.DataStatus(0) == core.Unknown {
		g.Out.Send(0, g.In.Data(0))
		g.Out.Enable(0)
	}
	if !g.In.AckStatus(0).Known() {
		switch g.Out.AckStatus(0) {
		case core.Yes:
			g.In.Ack(0)
		case core.No:
			g.In.Nack(0)
		}
	}
}

func init() {
	core.Register(&core.Template{
		Name: "pcl.clockgate",
		Doc:  "clock-domain boundary: passes data every divisor'th cycle",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewClockGate(name, p)
		},
	})
}
