package pcl

// flowmodel.go contributes per-template transfer functions to the
// whole-program dataflow analysis (core.AnalyzeFlow, DESIGN.md Appendix
// G). Each FlowTransfer abstracts the template's handlers over the
// analysis lattice: it must be a pure function of construction parameters
// and input facts, and must propose a fact for every signal the
// template's cycle-start or reactive handlers can ever drive. Templates
// without a transfer function here (arbiter, memarray) are treated as
// opaque — sound, just imprecise.

import (
	core "liberty/internal/core"
)

// FlowTransfer implements core.FlowModel. A source's offers depend only
// on its construction parameters: rate 0 never generates, so the out
// signals are dead; rate 1 with no item budget and the default generator
// offers on every cycle (the default generator never exhausts and a
// back-pressured offer is re-offered); anything else — probabilistic
// injection, a finite count, a custom generator that may go bursty or
// exhaust — varies cycle to cycle.
func (s *Source) FlowTransfer(f *core.Flow) {
	for i := 0; i < s.Out.Width(); i++ {
		switch {
		case s.rate == 0:
			f.SetData(s.Out, i, core.FlowNo, core.FlowValue{})
			f.SetEnable(s.Out, i, core.FlowNo)
		case s.rate >= 1 && s.count == 0 && s.defaultGen:
			f.SetData(s.Out, i, core.FlowYes, core.FlowValueAny())
			f.SetEnable(s.Out, i, core.FlowYes)
		default:
			f.SetData(s.Out, i, core.FlowTop, core.FlowValueAny())
			f.SetEnable(s.Out, i, core.FlowTop)
		}
	}
}

// FlowTransfer implements core.FlowModel. With a dead input nothing ever
// crosses the gate on ticking or blocked cycles alike. With divisor 1 the
// gate ticks every cycle and is a pure passthrough: data and value flow
// through, enable mirrors data firmness, and the upstream ack mirrors the
// downstream ack on offered data (a blocked cycle can never be observed).
// Any other divisor joins in the blocked-cycle behavior — send nothing,
// disable, nack — so only dead-input facts stay constant.
func (g *ClockGate) FlowTransfer(f *core.Flow) {
	in := f.Facts(g.In, 0)
	if in.Data == core.FlowNo {
		f.SetData(g.Out, 0, core.FlowNo, core.FlowValue{})
		f.SetEnable(g.Out, 0, core.FlowNo)
		f.SetAck(g.In, 0, core.FlowNo)
		return
	}
	out := f.Facts(g.Out, 0)
	ack := out.Ack
	if in.Data != core.FlowYes {
		// Data-No cycles nack regardless of downstream.
		ack = ack.Join(core.FlowNo)
	}
	if g.divisor == 1 {
		f.SetData(g.Out, 0, in.Data, in.Value)
		f.SetEnable(g.Out, 0, in.Data)
		f.SetAck(g.In, 0, ack)
		return
	}
	f.SetData(g.Out, 0, in.Data.Join(core.FlowNo), in.Value)
	f.SetEnable(g.Out, 0, in.Data.Join(core.FlowNo))
	f.SetAck(g.In, 0, ack.Join(core.FlowNo))
}

// FlowTransfer implements core.FlowModel (dead-input propagation).
func (q *Queue) FlowTransfer(f *core.Flow) { deadPropagate(f, q.In, q.Out) }

// FlowTransfer implements core.FlowModel (dead-input propagation).
func (d *Delay) FlowTransfer(f *core.Flow) { deadPropagate(f, d.In, d.Out) }

// FlowTransfer implements core.FlowModel (dead-input propagation).
func (t *Tee) FlowTransfer(f *core.Flow) { deadPropagate(f, t.In, t.Out) }

// FlowTransfer implements core.FlowModel (dead-input propagation).
func (r *Route) FlowTransfer(f *core.Flow) { deadPropagate(f, r.In, r.Out) }

// FlowTransfer implements core.FlowModel (dead-input propagation).
func (fl *Filter) FlowTransfer(f *core.Flow) { deadPropagate(f, fl.In, fl.Out) }

// deadPropagate is the shared transfer function for the forwarding
// templates (queue, delay, tee, route, filter): when every input is
// provably dead — or there are no inputs at all — nothing can ever be
// buffered or forwarded, so every output sends nothing and disables and
// every input nacks, exactly the templates' idle-handler behavior. Any
// live input makes the whole template opaque (⊤): buffering, latency,
// predicates and broadcast acceptance all make the outputs vary. While
// some input fact is still ⊥ the proposal stays ⊥ so a premature ⊤ never
// sticks.
func deadPropagate(f *core.Flow, in, out *core.Port) {
	dead, bottom := true, false
	for i := 0; i < in.Width(); i++ {
		switch f.Facts(in, i).Data {
		case core.FlowNo:
		case core.FlowBottom:
			bottom = true
		default:
			dead = false
		}
	}
	switch {
	case !dead:
		for j := 0; j < out.Width(); j++ {
			f.SetData(out, j, core.FlowTop, core.FlowValueAny())
			f.SetEnable(out, j, core.FlowTop)
		}
		for i := 0; i < in.Width(); i++ {
			f.SetAck(in, i, core.FlowTop)
		}
	case bottom:
		for j := 0; j < out.Width(); j++ {
			f.SetData(out, j, core.FlowBottom, core.FlowValue{})
			f.SetEnable(out, j, core.FlowBottom)
		}
		for i := 0; i < in.Width(); i++ {
			f.SetAck(in, i, core.FlowBottom)
		}
	default:
		for j := 0; j < out.Width(); j++ {
			f.SetData(out, j, core.FlowNo, core.FlowValue{})
			f.SetEnable(out, j, core.FlowNo)
		}
		for i := 0; i < in.Width(); i++ {
			f.SetAck(in, i, core.FlowNo)
		}
	}
}
