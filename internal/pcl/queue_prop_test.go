package pcl_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	core "liberty/internal/core"
	"liberty/internal/pcl"
	"liberty/internal/simtest"
)

// TestQueueMatchesGoldenFIFO drives a queue with pseudo-random offer and
// acceptance patterns and checks it against a plain-slice reference model:
// everything offered is eventually delivered, in order, and occupancy
// never exceeds capacity.
func TestQueueMatchesGoldenFIFO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(6)
		n := 10 + rng.Intn(40)
		offerGaps := make(map[uint64]bool)
		acceptGaps := make(map[uint64]bool)
		for c := uint64(0); c < 200; c++ {
			if rng.Intn(3) == 0 {
				offerGaps[c] = true
			}
			if rng.Intn(3) == 0 {
				acceptGaps[c] = true
			}
		}

		prod := simtest.NewProducer("prod", simtest.IntSeq(n))
		prod.Gate = func(cycle uint64) bool { return !offerGaps[cycle] }
		q, err := pcl.NewQueue("q", core.Params{"capacity": capacity})
		if err != nil {
			t.Fatal(err)
		}
		cons := simtest.NewConsumer("cons", func(cycle uint64, v any) bool { return !acceptGaps[cycle] })
		b := core.NewBuilder(core.WithSeed(seed))
		b.Add(prod)
		b.Add(q)
		b.Add(cons)
		b.Connect(prod, "out", q, "in")
		b.Connect(q, "out", cons, "in")
		sim := simtest.Build(t, b)

		for c := 0; c < 400; c++ {
			if err := sim.Step(); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if q.Len() > capacity {
				t.Logf("seed %d: occupancy %d > capacity %d", seed, q.Len(), capacity)
				return false
			}
			if prod.Done() && len(cons.Got) == n {
				break
			}
		}
		got := cons.Ints(t)
		if len(got) != n {
			t.Logf("seed %d: delivered %d of %d", seed, len(got), n)
			return false
		}
		for i, v := range got {
			if v != i {
				t.Logf("seed %d: out of order at %d: %v", seed, i, got)
				return false
			}
		}
		// Conservation: enqueues == dequeues + still-queued.
		enq := sim.Stats().CounterValue("q.enqueues")
		deq := sim.Stats().CounterValue("q.dequeues")
		if enq != deq+int64(q.Len()) {
			t.Logf("seed %d: conservation violated enq=%d deq=%d len=%d", seed, enq, deq, q.Len())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueSelectFnSafety: hostile selection functions (out-of-range,
// duplicate, reversed indices) must never corrupt the queue — entries are
// conserved and capacity is respected.
func TestQueueSelectFnSafety(t *testing.T) {
	hostile := []pcl.SelectFn{
		func(entries []any) []int { return []int{99, -1, 0, 0, 1} }, // junk + dups
		func(entries []any) []int { // reversed
			out := make([]int, len(entries))
			for i := range out {
				out[i] = len(entries) - 1 - i
			}
			return out
		},
		func(entries []any) []int { return nil }, // selects nothing
	}
	for k, sel := range hostile {
		prod := simtest.NewProducer("prod", simtest.IntSeq(12))
		q, err := pcl.NewQueue("q", core.Params{"capacity": 4, "select": sel})
		if err != nil {
			t.Fatal(err)
		}
		cons := simtest.NewConsumer("cons", nil)
		b := core.NewBuilder()
		b.Add(prod)
		b.Add(q)
		b.Add(cons)
		b.Connect(prod, "out", q, "in")
		b.Connect(q, "out", cons, "in")
		sim := simtest.Build(t, b)
		for i := 0; i < 60; i++ {
			if err := sim.Step(); err != nil {
				t.Fatalf("selector %d: %v", k, err)
			}
			if q.Len() > 4 {
				t.Fatalf("selector %d: occupancy %d exceeds capacity", k, q.Len())
			}
		}
		enq := sim.Stats().CounterValue("q.enqueues")
		deq := sim.Stats().CounterValue("q.dequeues")
		if enq != deq+int64(q.Len()) {
			t.Fatalf("selector %d: conservation broken enq=%d deq=%d len=%d", k, enq, deq, q.Len())
		}
	}
}
