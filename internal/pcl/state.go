package pcl

import (
	"bytes"
	"encoding/gob"
)

// This file makes every pcl template checkpointable: each handler-bearing
// module implements core.Stateful so core.Sim.Snapshot can serialize the
// module's private simulation state and core.Program.Restore can replay
// it onto a freshly stamped Sim. Stateless modules (tee, route, filter,
// clockgate — all their behavior derives from construction parameters and
// the current cycle) return an empty blob.
//
// Boxed ([]any) payloads travel through encoding/gob: a model that flows
// custom concrete types through pcl queues/sources must gob.Register
// them before calling Snapshot. The common primitives and the pcl memory
// messages are registered here.

func init() {
	gob.Register(int(0))
	gob.Register(int8(0))
	gob.Register(int16(0))
	gob.Register(int32(0))
	gob.Register(int64(0))
	gob.Register(uint(0))
	gob.Register(uint8(0))
	gob.Register(uint16(0))
	gob.Register(uint32(0))
	gob.Register(uint64(0))
	gob.Register(float32(0))
	gob.Register(float64(0))
	gob.Register(false)
	gob.Register("")
	gob.Register(MemReq{})
	gob.Register(MemResp{})
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(blob []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(blob)).Decode(v)
}

// stateDelayEntry is the exported gob mirror of delayEntry.
type stateDelayEntry struct {
	V     any
	U     uint64
	Ready uint64
}

func packLanes(lanes [][]delayEntry) [][]stateDelayEntry {
	out := make([][]stateDelayEntry, len(lanes))
	for i, lane := range lanes {
		out[i] = make([]stateDelayEntry, len(lane))
		for j, e := range lane {
			out[i][j] = stateDelayEntry{V: e.v, U: e.u, Ready: e.ready}
		}
	}
	return out
}

func unpackLanes(lanes [][]stateDelayEntry) [][]delayEntry {
	out := make([][]delayEntry, len(lanes))
	for i, lane := range lanes {
		out[i] = make([]delayEntry, len(lane))
		for j, e := range lane {
			out[i][j] = delayEntry{v: e.V, u: e.U, ready: e.Ready}
		}
	}
	return out
}

// sourceState is Source's serialized form. Rate is included so a rate
// changed after construction (Source.SetRate) survives a checkpoint.
type sourceState struct {
	Rate    float64
	Pending []any
	PendU   []uint64
	PendSet []bool
	Seq     uint64
	Done    bool
}

// MarshalState implements core.Stateful.
func (s *Source) MarshalState() ([]byte, error) {
	return gobEncode(sourceState{
		Rate:    s.rate,
		Pending: s.pending,
		PendU:   s.pendU,
		PendSet: s.pendSet,
		Seq:     s.seq,
		Done:    s.done,
	})
}

// UnmarshalState implements core.Stateful.
func (s *Source) UnmarshalState(blob []byte) error {
	var st sourceState
	if err := gobDecode(blob, &st); err != nil {
		return err
	}
	s.rate = st.Rate
	s.pending = st.Pending
	s.pendU = st.PendU
	s.pendSet = st.PendSet
	s.seq = st.Seq
	s.done = st.Done
	return nil
}

type sinkState struct {
	Received []any
}

// MarshalState implements core.Stateful.
func (s *Sink) MarshalState() ([]byte, error) {
	return gobEncode(sinkState{Received: s.received})
}

// UnmarshalState implements core.Stateful.
func (s *Sink) UnmarshalState(blob []byte) error {
	var st sinkState
	if err := gobDecode(blob, &st); err != nil {
		return err
	}
	s.received = st.Received
	return nil
}

type queueState struct {
	Entries  []any
	EntriesU []uint64
}

// MarshalState implements core.Stateful.
func (q *Queue) MarshalState() ([]byte, error) {
	return gobEncode(queueState{Entries: q.entries, EntriesU: q.entriesU})
}

// UnmarshalState implements core.Stateful.
func (q *Queue) UnmarshalState(blob []byte) error {
	var st queueState
	if err := gobDecode(blob, &st); err != nil {
		return err
	}
	q.entries = st.Entries
	q.entriesU = st.EntriesU
	return nil
}

type delayState struct {
	Lanes [][]stateDelayEntry
}

// MarshalState implements core.Stateful.
func (d *Delay) MarshalState() ([]byte, error) {
	return gobEncode(delayState{Lanes: packLanes(d.lanes)})
}

// UnmarshalState implements core.Stateful.
func (d *Delay) UnmarshalState(blob []byte) error {
	var st delayState
	if err := gobDecode(blob, &st); err != nil {
		return err
	}
	d.lanes = unpackLanes(st.Lanes)
	return nil
}

type arbiterState struct {
	Last int
}

// MarshalState implements core.Stateful.
func (a *Arbiter) MarshalState() ([]byte, error) {
	return gobEncode(arbiterState{Last: a.last})
}

// UnmarshalState implements core.Stateful.
func (a *Arbiter) UnmarshalState(blob []byte) error {
	var st arbiterState
	if err := gobDecode(blob, &st); err != nil {
		return err
	}
	a.last = st.Last
	return nil
}

type memArrayState struct {
	Words   []uint32
	Pending [][]stateDelayEntry
}

// MarshalState implements core.Stateful.
func (m *MemArray) MarshalState() ([]byte, error) {
	return gobEncode(memArrayState{Words: m.words, Pending: packLanes(m.pending)})
}

// UnmarshalState implements core.Stateful.
func (m *MemArray) UnmarshalState(blob []byte) error {
	var st memArrayState
	if err := gobDecode(blob, &st); err != nil {
		return err
	}
	m.words = st.Words
	m.pending = unpackLanes(st.Pending)
	return nil
}

// The remaining templates hold no mutable simulation state between
// cycles — everything they do derives from construction parameters and
// the signals of the current cycle — but they do carry handlers, so they
// implement core.Stateful with an empty blob to stay snapshottable.

// MarshalState implements core.Stateful.
func (t *Tee) MarshalState() ([]byte, error) { return nil, nil }

// UnmarshalState implements core.Stateful.
func (t *Tee) UnmarshalState([]byte) error { return nil }

// MarshalState implements core.Stateful.
func (r *Route) MarshalState() ([]byte, error) { return nil, nil }

// UnmarshalState implements core.Stateful.
func (r *Route) UnmarshalState([]byte) error { return nil }

// MarshalState implements core.Stateful.
func (f *Filter) MarshalState() ([]byte, error) { return nil, nil }

// UnmarshalState implements core.Stateful.
func (f *Filter) UnmarshalState([]byte) error { return nil }

// MarshalState implements core.Stateful.
func (g *ClockGate) MarshalState() ([]byte, error) { return nil, nil }

// UnmarshalState implements core.Stateful.
func (g *ClockGate) UnmarshalState([]byte) error { return nil }
