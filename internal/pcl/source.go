package pcl

import (
	"fmt"
	"math/rand"

	core "liberty/internal/core"
)

// payloadOpt parses the "payload" parameter shared by the pcl data-path
// templates: "any" (default — boxed values through the spill lane) or
// "uint64" (scalar values through the dense fast lane, zero-allocation).
func payloadOpt(p core.Params) (core.PayloadKind, error) {
	switch s := p.Str("payload", "any"); s {
	case "any":
		return core.PayloadAny, nil
	case "uint64":
		return core.PayloadUint64, nil
	default:
		return 0, &core.ParamError{Param: "payload", Detail: `must be "any" or "uint64"`}
	}
}

// GenFn produces the next datum a Source offers. Returning ok=false means
// the source is exhausted; returning (nil, true) means "nothing this
// cycle, try again later" (bursty/idle generators). It runs at most once
// per item: a back-pressured item is retried without regenerating.
type GenFn func(rng *rand.Rand, cycle uint64, seq uint64) (v any, ok bool)

// Source injects generated data, one offer per out connection per cycle,
// gated by an injection rate. With the default generator it emits its
// sequence number; statistical traffic models supply their own GenFn —
// the "statistical packet generator" of the paper's mixed-abstraction
// example is exactly this template with a CCL packet generator plugged in.
//
// With payload="uint64" the source declares PayloadUint64 on its out
// port, stores pending items unboxed and offers them via SendUint64, so
// steady-state injection performs zero heap allocations; the default
// generator then emits the sequence number as a uint64 and a custom
// GenFn must return uint64 values.
type Source struct {
	core.Base
	Out *core.Port

	rate       float64
	count      uint64 // 0 = unlimited
	gen        GenFn
	typed      bool // payload="uint64": scalar fast-lane mode
	defaultGen bool // no gen param: sequence-number generator (never exhausts)

	pending []any // boxed mode pending item per out conn (nil = empty)
	pendU   []uint64
	pendSet []bool // typed mode: pendU[i] valid

	seq  uint64
	done bool

	cInjected *core.Counter
	cBlocked  *core.Counter
}

// NewSource constructs a source. Parameters:
//
//	rate    (float, default 1.0)    — per-connection injection probability
//	count   (int, default 0)        — stop after this many items (0 = endless)
//	gen     (GenFn, optional)       — item generator
//	payload (string, default "any") — "uint64" selects the scalar fast lane
func NewSource(name string, p core.Params) (*Source, error) {
	kind, err := payloadOpt(p)
	if err != nil {
		return nil, err
	}
	s := &Source{
		rate:  p.Float("rate", 1.0),
		count: uint64(p.Int("count", 0)),
		gen:   core.Fn[GenFn](p, "gen", nil),
		typed: kind == core.PayloadUint64,
	}
	if s.rate < 0 || s.rate > 1 {
		return nil, &core.ParamError{Param: "rate", Detail: "must be in [0,1]"}
	}
	s.defaultGen = s.gen == nil
	if s.gen == nil && !s.typed {
		s.gen = func(rng *rand.Rand, cycle, seq uint64) (any, bool) { return int(seq), true }
	}
	s.Init(name, s)
	s.Out = s.AddOutPort("out", core.PortOpts{MinWidth: 1, Payload: kind})
	s.OnCycleStart(s.cycleStart)
	s.OnCycleEnd(s.cycleEnd)
	return s, nil
}

// SetRate changes the per-connection injection probability. Values are
// clamped to [0,1]. It exists so one compiled core.Program can stamp a
// parameter sweep: each stamped Sim adjusts its sources before running
// instead of recompiling the netlist per sweep point. Call it only
// between cycles (before Run/Step), never from inside a handler.
func (s *Source) SetRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s.rate = rate
}

// Injected returns how many items have been successfully injected.
func (s *Source) Injected() uint64 {
	if s.cInjected == nil {
		return 0
	}
	return uint64(s.cInjected.Value())
}

// Exhausted reports whether the generator has finished and all pending
// items have drained.
func (s *Source) Exhausted() bool {
	if !s.done {
		return false
	}
	for _, set := range s.pendSet {
		if set {
			return false
		}
	}
	for _, v := range s.pending {
		if v != nil {
			return false
		}
	}
	return true
}

func (s *Source) cycleStart() {
	if s.cInjected == nil {
		s.cInjected = s.Counter("injected")
		s.cBlocked = s.Counter("blocked")
	}
	if s.typed {
		s.cycleStartTyped()
		return
	}
	for len(s.pending) < s.Out.Width() {
		s.pending = append(s.pending, nil)
	}
	for i := 0; i < s.Out.Width(); i++ {
		if s.pending[i] == nil && !s.done {
			if s.count > 0 && s.seq >= s.count {
				s.done = true
			} else if s.rate >= 1 || s.Rand().Float64() < s.rate {
				v, ok := s.gen(s.Rand(), s.Now(), s.seq)
				switch {
				case !ok:
					s.done = true
				case v != nil:
					s.pending[i] = v
					s.seq++
				}
			}
		}
		if s.pending[i] != nil {
			s.Out.Send(i, s.pending[i])
			s.Out.Enable(i)
		} else {
			s.Out.SendNothing(i)
			s.Out.Disable(i)
		}
	}
}

// cycleStartTyped is the scalar fast-lane injection path: unboxed pending
// storage and SendUint64 offers, allocation-free once the per-connection
// slices have grown to the port width.
func (s *Source) cycleStartTyped() {
	for len(s.pendSet) < s.Out.Width() {
		s.pendU = append(s.pendU, 0)
		s.pendSet = append(s.pendSet, false)
	}
	for i := 0; i < s.Out.Width(); i++ {
		if !s.pendSet[i] && !s.done {
			if s.count > 0 && s.seq >= s.count {
				s.done = true
			} else if s.rate >= 1 || s.Rand().Float64() < s.rate {
				if s.gen == nil {
					s.pendU[i] = s.seq
					s.pendSet[i] = true
					s.seq++
				} else if v, ok := s.gen(s.Rand(), s.Now(), s.seq); !ok {
					s.done = true
				} else if v != nil {
					u, uok := v.(uint64)
					if !uok {
						panic(fmt.Sprintf("pcl.source %s: payload=\"uint64\" generator returned %T, want uint64",
							s.Name(), v))
					}
					s.pendU[i] = u
					s.pendSet[i] = true
					s.seq++
				}
			}
		}
		if s.pendSet[i] {
			s.Out.SendUint64(i, s.pendU[i])
			s.Out.Enable(i)
		} else {
			s.Out.SendNothing(i)
			s.Out.Disable(i)
		}
	}
}

func (s *Source) cycleEnd() {
	if s.typed {
		for i := 0; i < s.Out.Width() && i < len(s.pendSet); i++ {
			if !s.pendSet[i] {
				continue
			}
			if s.Out.Transferred(i) {
				s.pendSet[i] = false
				s.cInjected.Inc()
			} else {
				s.cBlocked.Inc()
			}
		}
		return
	}
	for i := 0; i < s.Out.Width(); i++ {
		if s.pending[i] == nil {
			continue
		}
		if s.Out.Transferred(i) {
			s.pending[i] = nil
			s.cInjected.Inc()
		} else {
			s.cBlocked.Inc()
		}
	}
}

func init() {
	core.Register(&core.Template{
		Name: "pcl.source",
		Doc:  "rate-gated generated-data injector",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewSource(name, p)
		},
	})
}
