package pcl

import (
	core "liberty/internal/core"
)

// Stamped is implemented by messages that record their injection cycle;
// Sink uses it to measure end-to-end latency (CCL packets implement it).
type Stamped interface {
	InjectedAt() uint64
}

// Sink consumes and counts everything offered to it, optionally keeping
// the received values and recording delivery latency for Stamped data.
//
// With payload="uint64" the sink declares PayloadUint64 on its in port
// and consumes via TransferredUint64, so the steady-state counting path
// never boxes. Latency stamping does not apply to scalar payloads, and
// keep=true boxes each retained value.
type Sink struct {
	core.Base
	In *core.Port

	keep     bool
	typed    bool // payload="uint64": scalar fast-lane mode
	accept   bool
	received []any

	cReceived *core.Counter
	hLatency  *core.Histogram
}

// NewSink constructs a sink. Parameters:
//
//	keep    (bool, default false)    — retain received values for inspection
//	accept  (bool, default true)     — false refuses everything (DefaultAck=No),
//	                                   modeling a detached or saturated consumer
//	payload (string, default "any")  — "uint64" selects the scalar fast lane
func NewSink(name string, p core.Params) (*Sink, error) {
	kind, err := payloadOpt(p)
	if err != nil {
		return nil, err
	}
	s := &Sink{keep: p.Bool("keep", false), accept: p.Bool("accept", true), typed: kind == core.PayloadUint64}
	s.Init(name, s)
	// Default control accepts everything — unless accept=false pins the
	// ack to No, which the dataflow analysis sees as a provably stalled
	// consumer (LSE012).
	opts := core.PortOpts{Payload: kind}
	if !s.accept {
		opts.DefaultAck = core.No
	}
	s.In = s.AddInPort("in", opts)
	s.OnCycleEnd(s.cycleEnd)
	return s, nil
}

// Received returns the number of values consumed.
func (s *Sink) Received() int64 {
	if s.cReceived == nil {
		return 0
	}
	return s.cReceived.Value()
}

// Values returns the retained values (only when keep=true).
func (s *Sink) Values() []any { return s.received }

// MeanLatency returns the average delivery latency of Stamped values.
func (s *Sink) MeanLatency() float64 {
	if s.hLatency == nil {
		return 0
	}
	return s.hLatency.Mean()
}

func (s *Sink) cycleEnd() {
	if s.cReceived == nil {
		s.cReceived = s.Counter("received")
		s.hLatency = s.Histogram("latency")
	}
	if s.typed {
		for i := 0; i < s.In.Width(); i++ {
			u, ok := s.In.TransferredUint64(i)
			if !ok {
				continue
			}
			s.cReceived.Inc()
			if s.keep {
				s.received = append(s.received, u)
			}
		}
		return
	}
	for i := 0; i < s.In.Width(); i++ {
		v, ok := s.In.TransferredData(i)
		if !ok {
			continue
		}
		s.cReceived.Inc()
		if st, ok := v.(Stamped); ok {
			s.hLatency.Observe(float64(s.Now() - st.InjectedAt()))
		}
		if s.keep {
			s.received = append(s.received, v)
		}
	}
}

func init() {
	core.Register(&core.Template{
		Name: "pcl.sink",
		Doc:  "consumes, counts and latency-profiles incoming data",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewSink(name, p)
		},
	})
}
