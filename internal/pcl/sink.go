package pcl

import (
	core "liberty/internal/core"
)

// Stamped is implemented by messages that record their injection cycle;
// Sink uses it to measure end-to-end latency (CCL packets implement it).
type Stamped interface {
	InjectedAt() uint64
}

// Sink consumes and counts everything offered to it, optionally keeping
// the received values and recording delivery latency for Stamped data.
type Sink struct {
	core.Base
	In *core.Port

	keep     bool
	received []any

	cReceived *core.Counter
	hLatency  *core.Histogram
}

// NewSink constructs a sink. Parameters:
//
//	keep (bool, default false) — retain received values for inspection
func NewSink(name string, p core.Params) (*Sink, error) {
	s := &Sink{keep: p.Bool("keep", false)}
	s.Init(name, s)
	s.In = s.AddInPort("in") // default control accepts everything
	s.OnCycleEnd(s.cycleEnd)
	return s, nil
}

// Received returns the number of values consumed.
func (s *Sink) Received() int64 {
	if s.cReceived == nil {
		return 0
	}
	return s.cReceived.Value()
}

// Values returns the retained values (only when keep=true).
func (s *Sink) Values() []any { return s.received }

// MeanLatency returns the average delivery latency of Stamped values.
func (s *Sink) MeanLatency() float64 {
	if s.hLatency == nil {
		return 0
	}
	return s.hLatency.Mean()
}

func (s *Sink) cycleEnd() {
	if s.cReceived == nil {
		s.cReceived = s.Counter("received")
		s.hLatency = s.Histogram("latency")
	}
	for i := 0; i < s.In.Width(); i++ {
		v, ok := s.In.TransferredData(i)
		if !ok {
			continue
		}
		s.cReceived.Inc()
		if st, ok := v.(Stamped); ok {
			s.hLatency.Observe(float64(s.Now() - st.InjectedAt()))
		}
		if s.keep {
			s.received = append(s.received, v)
		}
	}
}

func init() {
	core.Register(&core.Template{
		Name: "pcl.sink",
		Doc:  "consumes, counts and latency-profiles incoming data",
		Build: func(b *core.Builder, name string, p core.Params) (core.Instance, error) {
			return NewSink(name, p)
		},
	})
}
