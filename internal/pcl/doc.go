// Package pcl is the Primitive Component Library: domain-independent
// building blocks used across every other library, mirroring the PCL
// released with LSE 1.0. The headline reuse claim of the paper — "a single
// module template can be instantiated to model a processor's instruction
// window, its reorder buffer, and the I/O buffers in a packet router" — is
// carried by Queue, whose algorithmic selection parameter customizes
// dequeue behavior without touching the template.
//
// All templates register themselves in core.DefaultRegistry under
// "pcl.<name>" so textual LSS specifications can instantiate them; Go
// callers use the New* constructors directly.
package pcl
