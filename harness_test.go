package liberty_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"liberty/internal/ccl"
	core "liberty/internal/core"
	"liberty/internal/isa"
	"liberty/internal/mpl"
	"liberty/internal/nilib"
	"liberty/internal/pcl"
	"liberty/internal/upl"
	"liberty/lse"
)

// commitNI wraps a pipeline as a packet source: one packet per eight
// committed instructions (shared by the C2 benchmark and tests).
type commitNI struct {
	core.Base
	Out *core.Port

	cpu     *upl.InOrderCPU
	last    uint64
	backlog int
	seq     uint64
}

func newCommitNI(name string, cpu *upl.InOrderCPU) *commitNI {
	n := &commitNI{cpu: cpu}
	n.Init(name, n)
	n.Out = n.AddOutPort("out", core.PortOpts{MinWidth: 1, MaxWidth: 1})
	n.OnCycleStart(n.cycleStart)
	n.OnCycleEnd(n.cycleEnd)
	return n
}

func (n *commitNI) cycleStart() {
	if batches := n.cpu.Retired() / 8; batches > n.last {
		n.backlog += int(batches - n.last)
		n.last = batches
	}
	if n.backlog > 0 {
		n.Out.Send(0, &ccl.Packet{ID: n.seq, Src: 0, Dst: 1, Size: 2, Injected: n.Now()})
		n.Out.Enable(0)
	} else {
		n.Out.SendNothing(0)
		n.Out.Disable(0)
	}
}

func (n *commitNI) cycleEnd() {
	if n.backlog > 0 && n.Out.Transferred(0) {
		n.backlog--
		n.seq++
	}
}

// nicThroughput runs `frames` equal-size frames through the programmable
// NIC and returns delivered frames per thousand cycles.
func nicThroughput(tb testing.TB, payload, frames int) float64 {
	tb.Helper()
	b := core.NewBuilder(core.WithSeed(1))
	nic, err := nilib.NewNIC(b, "nic", nilib.NICCfg{})
	if err != nil {
		tb.Fatal(err)
	}
	b.Add(nic)
	hostMem, err := pcl.NewMemArray("host", core.Params{"words": 32 * 2048 / 4, "latency": 2, "queue": 8})
	if err != nil {
		tb.Fatal(err)
	}
	b.Add(hostMem)
	var items []any
	for i := 0; i < frames; i++ {
		p := make([]byte, payload)
		items = append(items, &nilib.Frame{
			Src: nilib.MACAddr{0, 0, 0, 0, 0, byte(i)}, EtherType: 0x0800, Payload: p,
		})
	}
	wireSrc := newFrameProducer("wire", items)
	b.Add(wireSrc)
	b.Connect(wireSrc, "out", nic, "wire")
	b.Connect(nic, "hostreq", hostMem, "req")
	b.Connect(hostMem, "resp", nic, "hostresp")
	sim, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	ok, err := sim.RunUntil(func(*core.Sim) bool {
		return nic.Delivered() >= int64(frames)
	}, 2_000_000)
	if err != nil {
		tb.Fatal(err)
	}
	if !ok {
		tb.Fatalf("NIC delivered %d of %d frames", nic.Delivered(), frames)
	}
	return float64(frames) / float64(sim.Now()) * 1000
}

// frameProducer offers items in order, retrying until accepted (local
// copy of simtest.Producer, which is test-internal to internal/).
type frameProducer struct {
	core.Base
	Out *core.Port

	items []any
	pos   int
}

func newFrameProducer(name string, items []any) *frameProducer {
	p := &frameProducer{items: items}
	p.Init(name, p)
	p.Out = p.AddOutPort("out", core.PortOpts{MinWidth: 1, MaxWidth: 1})
	p.OnCycleStart(func() {
		if p.pos < len(p.items) {
			p.Out.Send(0, p.items[p.pos])
			p.Out.Enable(0)
		} else {
			p.Out.SendNothing(0)
			p.Out.Disable(0)
		}
	})
	p.OnCycleEnd(func() {
		if p.Out.Transferred(0) {
			p.pos++
		}
	})
	return p
}

// BenchmarkC6Coherence compares the pluggable coherence engines —
// bus-based snooping versus directory-over-mesh — on an identical
// producer/consumer sharing workload.
func BenchmarkC6Coherence(b *testing.B) {
	mkTraces := func(n int) [][]mpl.MemRef {
		traces := make([][]mpl.MemRef, n)
		for c := range traces {
			for k := 0; k < 25; k++ {
				traces[c] = append(traces[c], mpl.MemRef{
					Write: k%3 == 0,
					Addr:  uint32((k + c) % 8 * 32),
					Data:  uint32(c<<16 | k),
				})
			}
		}
		return traces
	}
	allDone := func(cores []*mpl.TraceCore) func() bool {
		return func() bool {
			for _, c := range cores {
				if !c.Done() {
					return false
				}
			}
			return true
		}
	}
	b.Run("snooping-bus", func(b *testing.B) {
		var cycles uint64
		var lat float64
		for i := 0; i < b.N; i++ {
			bld := core.NewBuilder()
			sys, err := mpl.BuildSnoopSystem(bld, "coh", 4, mpl.CacheCtrlCfg{MESI: true}, mpl.SnoopBusCfg{})
			if err != nil {
				b.Fatal(err)
			}
			var cores []*mpl.TraceCore
			for c, tr := range mkTraces(4) {
				tc := mpl.NewTraceCore(fmt.Sprintf("core%d", c), tr, 1)
				bld.Add(tc)
				bld.Connect(tc, "req", sys.Ctrls[c], "cpu")
				bld.Connect(sys.Ctrls[c], "resp", tc, "resp")
				cores = append(cores, tc)
			}
			sim, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			cycles = runToDone(b, sim, allDone(cores), 200_000)
			lat = cores[0].MeanLatency()
		}
		b.ReportMetric(float64(cycles), "simcycles")
		b.ReportMetric(lat, "memlat_cycles")
	})
	b.Run("directory-mesh", func(b *testing.B) {
		var cycles uint64
		var lat float64
		for i := 0; i < b.N; i++ {
			bld := core.NewBuilder()
			sys, err := mpl.BuildDirectorySystem(bld, "coh", ccl.MeshCfg{W: 2, H: 2}, upl.CacheCfg{})
			if err != nil {
				b.Fatal(err)
			}
			var cores []*mpl.TraceCore
			for c, tr := range mkTraces(4) {
				tc := mpl.NewTraceCore(fmt.Sprintf("core%d", c), tr, 1)
				bld.Add(tc)
				bld.Connect(tc, "req", sys.L1s[c], "cpu")
				bld.Connect(sys.L1s[c], "resp", tc, "resp")
				cores = append(cores, tc)
			}
			sim, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			cycles = runToDone(b, sim, allDone(cores), 200_000)
			lat = cores[0].MeanLatency()
		}
		b.ReportMetric(float64(cycles), "simcycles")
		b.ReportMetric(lat, "memlat_cycles")
	})
}

// BenchmarkC8ControlOverride measures a queue chain under default control
// semantics versus a user control function that throttles acceptance — the
// §2.1 claim that control is overridable without touching the datapath.
func BenchmarkC8ControlOverride(b *testing.B) {
	run := func(b *testing.B, control core.ControlFn) float64 {
		bld := core.NewBuilder()
		src, _ := pcl.NewSource("src", nil)
		q, _ := pcl.NewQueue("q", core.Params{"capacity": 4})
		snk := newThrottledSink("snk", control)
		bld.Add(src)
		bld.Add(q)
		bld.Add(snk)
		bld.Connect(src, "out", q, "in")
		bld.Connect(q, "out", snk, "in")
		sim, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sim.Step(); err != nil {
				b.Fatal(err)
			}
		}
		return float64(snk.received) / float64(b.N)
	}
	b.Run("default-control", func(b *testing.B) {
		rate := run(b, nil)
		b.ReportMetric(rate, "items/cycle")
	})
	b.Run("throttling-control", func(b *testing.B) {
		n := 0
		throttle := core.ControlFn(func(data, enable core.Status, v any) core.Status {
			n++
			if n%2 == 0 {
				return core.No
			}
			return core.Unknown // defer to the default
		})
		rate := run(b, throttle)
		b.ReportMetric(rate, "items/cycle")
	})
}

// throttledSink counts transfers; its in-port control function is
// caller-supplied.
type throttledSink struct {
	core.Base
	In       *core.Port
	received int64
}

func newThrottledSink(name string, control core.ControlFn) *throttledSink {
	s := &throttledSink{}
	s.Init(name, s)
	s.In = s.AddInPort("in", core.PortOpts{Control: control})
	s.OnCycleEnd(func() {
		for i := 0; i < s.In.Width(); i++ {
			if s.In.Transferred(i) {
				s.received++
			}
		}
	})
	return s
}

// TestC3IterativeRefinement asserts the §2.2 claim: every refinement
// stage of the processor model compiles and runs to completion.
func TestC3IterativeRefinement(t *testing.T) {
	prog := isa.MustAssemble(isa.ProgSum)
	var cyclesByStage []uint64

	// Stage 1: fetch only, sink under default control.
	{
		b := core.NewBuilder()
		emu := isa.NewCPU()
		prog.LoadInto(emu.Mem)
		emu.Reset(prog.Entry)
		f, err := upl.NewFetchStage("cpu/fetch", emu, upl.FetchCfg{})
		if err != nil {
			t.Fatal(err)
		}
		snk, _ := pcl.NewSink("drain", nil)
		b.Add(f)
		b.Add(snk)
		b.Connect(f, "out", snk, "in")
		sim, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ok, err := sim.RunUntil(func(*core.Sim) bool { return f.Done() }, 1_000_000)
		if err != nil || !ok {
			t.Fatalf("stage 1: ok=%v err=%v", ok, err)
		}
		cyclesByStage = append(cyclesByStage, sim.Now())
	}
	// Stage 2: fetch + decode.
	{
		b := core.NewBuilder()
		emu := isa.NewCPU()
		prog.LoadInto(emu.Mem)
		emu.Reset(prog.Entry)
		f, err := upl.NewFetchStage("cpu/fetch", emu, upl.FetchCfg{})
		if err != nil {
			t.Fatal(err)
		}
		d := upl.NewDecodeStage("cpu/decode", upl.DefaultLatencies())
		snk, _ := pcl.NewSink("drain", nil)
		b.Add(f)
		b.Add(d)
		b.Add(snk)
		b.Connect(f, "out", d, "in")
		b.Connect(d, "out", snk, "in")
		sim, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ok, err := sim.RunUntil(func(*core.Sim) bool { return f.Done() }, 1_000_000)
		if err != nil || !ok {
			t.Fatalf("stage 2: ok=%v err=%v", ok, err)
		}
		cyclesByStage = append(cyclesByStage, sim.Now())
	}
	// Stage 3: the full pipeline.
	{
		b := core.NewBuilder()
		cpu, err := upl.NewInOrderCPU(b, "cpu", prog, upl.CPUCfg{})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ok, err := sim.RunUntil(func(*core.Sim) bool { return cpu.Done() }, 1_000_000)
		if err != nil || !ok {
			t.Fatalf("stage 3: ok=%v err=%v", ok, err)
		}
		if v := cpu.Emu().R[isa.RegV0]; v != 136 {
			t.Fatalf("sum = %d, want 136", v)
		}
		cyclesByStage = append(cyclesByStage, sim.Now())
	}
	// Detail can only slow the model down.
	for i := 1; i < len(cyclesByStage); i++ {
		if cyclesByStage[i] < cyclesByStage[i-1] {
			t.Fatalf("stage %d (%d cycles) faster than stage %d (%d): refinement should add detail",
				i, cyclesByStage[i], i-1, cyclesByStage[i-1])
		}
	}
}

// TestSpecsElaborate builds every shipped specification end to end.
func TestSpecsElaborate(t *testing.T) {
	matches, err := filepath.Glob("specs/*.lss")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no specs found: %v", err)
	}
	for _, path := range matches {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := lse.LoadLSS(string(src), lse.WithSeed(1))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if err := sim.Run(200); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
}

// TestC7ThroughputShape asserts the NIC claim qualitatively: bigger
// frames mean fewer frames per cycle (the per-frame rate is bounded by
// serialization and DMA, not constant).
func TestC7ThroughputShape(t *testing.T) {
	small := nicThroughput(t, 46, 20)
	large := nicThroughput(t, 1400, 20)
	if large >= small {
		t.Fatalf("frame rate should fall with frame size: small=%.2f large=%.2f frames/kcycle",
			small, large)
	}
}
