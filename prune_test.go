package liberty_test

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	core "liberty/internal/core"
	"liberty/internal/pcl"
)

// assemblePrunable wires live low-rate chains beside provably dead ones
// (rate-0 sources): the shape WithDataflowPrune exists for. The dead
// chains reach their sinks in the connection graph — LSE004 cannot see
// them — but the dataflow analysis proves every one of their signals
// resolves No forever.
func assemblePrunable(liveChains, deadChains, depth int) func(b *core.Builder) error {
	return func(b *core.Builder) error {
		chain := func(prefix string, i int, rate float64, count int64) error {
			src, err := pcl.NewSource(fmt.Sprintf("%ssrc%d", prefix, i),
				core.Params{"rate": rate, "count": count})
			if err != nil {
				return err
			}
			b.Add(src)
			var prev core.Instance = src
			for d := 0; d < depth; d++ {
				q, err := pcl.NewQueue(fmt.Sprintf("%sq%d_%d", prefix, i, d),
					core.Params{"capacity": int64(4)})
				if err != nil {
					return err
				}
				b.Add(q)
				b.Connect(prev, "out", q, "in")
				prev = q
			}
			snk, err := pcl.NewSink(fmt.Sprintf("%ssnk%d", prefix, i), nil)
			if err != nil {
				return err
			}
			b.Add(snk)
			b.Connect(prev, "out", snk, "in")
			return nil
		}
		for i := 0; i < liveChains; i++ {
			if err := chain("l", i, 0.2, 30); err != nil {
				return err
			}
		}
		for i := 0; i < deadChains; i++ {
			if err := chain("d", i, 0, 0); err != nil {
				return err
			}
		}
		return nil
	}
}

// survivingHasher fingerprints each cycle over the surviving connections
// only — the ids not deleted by the prune — so pruned and unpruned runs
// hash the same signal subset.
type survivingHasher struct {
	sim    *core.Sim
	skip   map[int]bool
	hashes []uint64
}

func (h *survivingHasher) OnCycleBegin(uint64)                             {}
func (h *survivingHasher) OnResolve(*core.Conn, core.SigKind, core.Status) {}
func (h *survivingHasher) Attach(s *core.Sim)                              { h.sim = s }

func (h *survivingHasher) OnCycleEnd(n uint64) {
	fh := fnv.New64a()
	for _, c := range h.sim.Conns() {
		if h.skip[c.ID()] {
			continue
		}
		v, _ := c.Data()
		fmt.Fprintf(fh, "%d:%d%d%d=%v;", c.ID(),
			c.Status(core.SigData), c.Status(core.SigEnable), c.Status(core.SigAck), v)
	}
	h.hashes = append(h.hashes, fh.Sum64())
}

// TestDataflowPruneBitIdentity is the prune's soundness guard: on a
// netlist of live chains beside provably dead ones, a pruned sparse
// session must produce bit-identical per-cycle statuses and values on
// every surviving connection — and identical live-sink deliveries — as
// unpruned sequential, levelized and sparse runs of the same netlist.
func TestDataflowPruneBitIdentity(t *testing.T) {
	const cycles = 200
	assemble := assemblePrunable(2, 3, 3)

	pruned, err := core.Compile(assemble,
		core.WithScheduler(core.SchedulerSparse), core.WithDataflowPrune())
	if err != nil {
		t.Fatal(err)
	}
	info := pruned.Schedule()
	// Each dead chain is 1 source + 3 queues + 1 sink = 5 instances and 4
	// connections, all provably dead.
	if info.PrunedConns != 3*4 || info.PrunedInsts != 3*5 {
		t.Fatalf("pruned %d conns / %d insts, want 12 / 15", info.PrunedConns, info.PrunedInsts)
	}
	prunedIDs := map[int]bool{}
	for id := 0; id < pruned.Conns(); id++ {
		if pruned.PrunedConn(id) {
			prunedIDs[id] = true
		}
	}
	if len(prunedIDs) != info.PrunedConns {
		t.Fatalf("PrunedConn marks %d conns, ScheduleInfo says %d", len(prunedIDs), info.PrunedConns)
	}
	prunedInsts := 0
	for id := 0; id < pruned.Instances(); id++ {
		if pruned.PrunedInstance(id) {
			prunedInsts++
		}
	}
	if prunedInsts != info.PrunedInsts {
		t.Fatalf("PrunedInstance marks %d insts, ScheduleInfo says %d", prunedInsts, info.PrunedInsts)
	}

	type runResult struct {
		hashes []uint64
		livers map[string]int64
	}
	run := func(prog *core.Program) runResult {
		t.Helper()
		h := &survivingHasher{skip: prunedIDs}
		sim, err := prog.NewSim(core.WithSeed(7), core.WithTracer(h))
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		if err := sim.Run(cycles); err != nil {
			t.Fatal(err)
		}
		livers := map[string]int64{}
		for _, inst := range sim.Instances() {
			if snk, ok := inst.(*pcl.Sink); ok && strings.HasPrefix(snk.Name(), "l") {
				livers[snk.Name()] = snk.Received()
			}
		}
		return runResult{hashes: h.hashes, livers: livers}
	}

	ref := run(mustCompile(t, assemble, core.WithScheduler(core.SchedulerSequential)))
	anyDelivered := false
	for _, n := range ref.livers {
		if n > 0 {
			anyDelivered = true
		}
	}
	if !anyDelivered {
		t.Fatal("live chains delivered nothing; the test would compare idle runs")
	}
	cases := map[string]*core.Program{
		"levelized": mustCompile(t, assemble, core.WithScheduler(core.SchedulerLevelized)),
		"sparse":    mustCompile(t, assemble, core.WithScheduler(core.SchedulerSparse)),
		"pruned":    pruned,
	}
	for name, prog := range cases {
		got := run(prog)
		if len(got.hashes) != len(ref.hashes) {
			t.Fatalf("%s: %d cycle hashes, want %d", name, len(got.hashes), len(ref.hashes))
		}
		for i := range ref.hashes {
			if got.hashes[i] != ref.hashes[i] {
				t.Fatalf("%s: cycle %d surviving-signal hash diverges from sequential", name, i)
			}
		}
		for snk, want := range ref.livers {
			if got.livers[snk] != want {
				t.Fatalf("%s: %s received %d, want %d", name, snk, got.livers[snk], want)
			}
		}
	}
}

func mustCompile(t *testing.T, assemble func(*core.Builder) error, opts ...core.BuildOption) *core.Program {
	t.Helper()
	p, err := core.Compile(assemble, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDataflowPruneRequiresSparse pins the guard: pruning moves dead
// structure into the sparse scheduler's replayed gated region, so any
// other engine must refuse the option at build time.
func TestDataflowPruneRequiresSparse(t *testing.T) {
	_, err := core.Compile(assemblePrunable(1, 1, 1),
		core.WithScheduler(core.SchedulerLevelized), core.WithDataflowPrune())
	if err == nil || !strings.Contains(err.Error(), "sparse") {
		t.Fatalf("want build error naming the sparse scheduler, got %v", err)
	}
}

// TestDataflowPruneSessionsInherit pins the Program/Sim contract: every
// session stamped from a pruned program skips the pruned handlers, and
// the prune never changes the netlist fingerprint (stamping compatibility
// is structural, not schedule-dependent).
func TestDataflowPruneSessionsInherit(t *testing.T) {
	assemble := assemblePrunable(1, 2, 2)
	pruned, err := core.Compile(assemble,
		core.WithScheduler(core.SchedulerSparse), core.WithDataflowPrune())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.Compile(assemble, core.WithScheduler(core.SchedulerSparse))
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Fingerprint() != plain.Fingerprint() {
		t.Fatalf("prune changed the netlist fingerprint: %x vs %x",
			pruned.Fingerprint(), plain.Fingerprint())
	}
	for seed := int64(1); seed <= 3; seed++ {
		sim, err := pruned.NewSim(core.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(50); err != nil {
			t.Fatal(err)
		}
		for _, inst := range sim.Instances() {
			if snk, ok := inst.(*pcl.Sink); ok && strings.HasPrefix(snk.Name(), "d") {
				if n := snk.Received(); n != 0 {
					t.Fatalf("seed %d: pruned sink %s received %d values", seed, snk.Name(), n)
				}
			}
		}
		sim.Close()
	}
}
