package liberty_test

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	core "liberty/internal/core"
	"liberty/internal/pcl"
	"liberty/lse"
)

// cycleHasher fingerprints every simulated cycle: at OnCycleEnd it hashes
// the id-ordered data/enable/ack statuses (and data values) of every
// connection. Two runs are bit-identical iff their hash sequences match.
type cycleHasher struct {
	sim    *core.Sim
	hashes []uint64
}

func (h *cycleHasher) OnCycleBegin(uint64)                             {}
func (h *cycleHasher) OnResolve(*core.Conn, core.SigKind, core.Status) {}
func (h *cycleHasher) Attach(s *core.Sim)                              { h.sim = s }

func (h *cycleHasher) OnCycleEnd(n uint64) {
	fh := fnv.New64a()
	for _, c := range h.sim.Conns() {
		v, _ := c.Data()
		fmt.Fprintf(fh, "%d:%d%d%d=%v;", c.ID(),
			c.Status(core.SigData), c.Status(core.SigEnable), c.Status(core.SigAck), v)
	}
	h.hashes = append(h.hashes, fh.Sum64())
}

// schedulerMatrix is every engine the differential tests pit against the
// sequential reference. exactCounts marks engines whose default/break
// metric counts must equal the sequential reference; the sparse engine is
// exempt — gated regions pay their default-control work once, on the
// cycle-0 full sweep, instead of per cycle — but its per-cycle signal
// hashes and statistics dumps must still be bit-identical.
var schedulerMatrix = []struct {
	name        string
	exactCounts bool
	opts        []lse.BuildOption
}{
	{"sequential", true, []lse.BuildOption{lse.WithScheduler(lse.SchedulerSequential)}},
	{"levelized", true, []lse.BuildOption{lse.WithScheduler(lse.SchedulerLevelized)}},
	{"parallel", true, []lse.BuildOption{lse.WithScheduler(lse.SchedulerParallel), lse.WithWorkers(4)}},
	// Small-round inline fallback: every reactive round runs on the
	// waking goroutine, the pool only provides mutual exclusion.
	{"parallel-inline", true, []lse.BuildOption{lse.WithScheduler(lse.SchedulerParallel),
		lse.WithWorkers(2), lse.WithParallelThreshold(1 << 20)}},
	{"sparse", false, []lse.BuildOption{lse.WithScheduler(lse.SchedulerSparse)}},
	// The partitioned engine must hold exact counts at every worker
	// count: per-level barriers and the handler-free wavefront keep the
	// default and break metrics equal to the sequential sweep's.
	{"partitioned-w1", true, []lse.BuildOption{lse.WithScheduler(lse.SchedulerPartitioned)}},
	{"partitioned-w2", true, []lse.BuildOption{lse.WithScheduler(lse.SchedulerPartitioned),
		lse.WithWorkers(2)}},
	{"partitioned-w4", true, []lse.BuildOption{lse.WithScheduler(lse.SchedulerPartitioned),
		lse.WithWorkers(4)}},
	// workers=8 over 4 shards with a hair-trigger parallel threshold:
	// maximal phase-pool traffic, executors outnumber shards, stealing on.
	{"partitioned-w8", true, []lse.BuildOption{lse.WithScheduler(lse.SchedulerPartitioned),
		lse.WithWorkers(8), lse.WithShards(4), lse.WithParallelThreshold(1)}},
	// The woven engine replays its compiled region but — unlike sparse —
	// accounts the replay, so it must hold exact default/break counts on
	// every shape: all-fallback (handler chains, the mesh residue),
	// all-const (passThrough fabrics) and everything between.
	{"woven", true, []lse.BuildOption{lse.WithScheduler(lse.SchedulerWoven)}},
	// Extra workers only parallelize the interpreted fallback's reactive
	// rounds; a hair-trigger threshold maximizes pool traffic there.
	{"woven-w4", true, []lse.BuildOption{lse.WithScheduler(lse.SchedulerWoven),
		lse.WithWorkers(4), lse.WithParallelThreshold(1)}},
}

type schedRun struct {
	hashes   []uint64
	stats    string
	defaults [3]uint64
	breaks   [3]uint64
}

func runSpecUnder(t *testing.T, src string, cycles uint64, opts ...lse.BuildOption) schedRun {
	t.Helper()
	h := &cycleHasher{}
	opts = append(opts, lse.WithSeed(1), lse.WithMetrics(), lse.WithTracer(h))
	sim, err := lse.LoadLSS(src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(cycles); err != nil {
		t.Fatal(err)
	}
	var st bytes.Buffer
	sim.Stats().Dump(&st)
	r := schedRun{hashes: h.hashes, stats: st.String()}
	m := sim.Metrics()
	for i, k := range []core.SigKind{core.SigData, core.SigEnable, core.SigAck} {
		r.defaults[i] = m.DefaultFallbacks(k)
		r.breaks[i] = m.CycleBreaks(k)
	}
	return r
}

func diffRuns(t *testing.T, what, name string, ref, got schedRun, exactCounts bool) {
	t.Helper()
	if len(ref.hashes) != len(got.hashes) {
		t.Fatalf("%s/%s: cycle count %d, want %d", what, name, len(got.hashes), len(ref.hashes))
	}
	for i := range ref.hashes {
		if ref.hashes[i] != got.hashes[i] {
			t.Fatalf("%s/%s: cycle %d signal statuses diverge from sequential", what, name, i)
		}
	}
	if ref.stats != got.stats {
		t.Fatalf("%s/%s: stats diverge from sequential:\n--- sequential\n%s--- %s\n%s",
			what, name, ref.stats, name, got.stats)
	}
	if exactCounts && (ref.defaults != got.defaults || ref.breaks != got.breaks) {
		t.Fatalf("%s/%s: default/break counts diverge: defaults %v vs %v, breaks %v vs %v",
			what, name, ref.defaults, got.defaults, ref.breaks, got.breaks)
	}
}

// TestSchedulersAgreeOnSpecs runs every shipped specification under the
// sequential, levelized and parallel engines and demands bit-identical
// per-cycle signal statuses, statistics dumps and scheduler counts — the
// redesign's central invariant on real models (including the mesh, whose
// router loop exercises the cyclic residue and its break sites).
func TestSchedulersAgreeOnSpecs(t *testing.T) {
	matches, err := filepath.Glob("specs/*.lss")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no specs found: %v", err)
	}
	for _, path := range matches {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cycles := uint64(200)
		if filepath.Base(path) == "mesh.lss" {
			cycles = 60 // the 4x4 mesh is the slow one; its loop still breaks every cycle
		}
		ref := runSpecUnder(t, string(src), cycles, schedulerMatrix[0].opts...)
		for _, tc := range schedulerMatrix[1:] {
			got := runSpecUnder(t, string(src), cycles, tc.opts...)
			diffRuns(t, filepath.Base(path), tc.name, ref, got, tc.exactCounts)
		}
	}
}

// TestSchedulersAgreeOnRandomNetlists does the same over pseudo-random
// pcl netlists: chains of queues with random depth and capacity, fanned
// between random sources and sinks.
func TestSchedulersAgreeOnRandomNetlists(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		ref := runRandomUnder(t, seed, schedulerMatrix[0].opts...)
		for _, tc := range schedulerMatrix[1:] {
			got := runRandomUnder(t, seed, tc.opts...)
			diffRuns(t, fmt.Sprintf("rand-%d", seed), tc.name, ref, got, tc.exactCounts)
		}
	}
}

func runRandomUnder(t *testing.T, seed int64, opts ...lse.BuildOption) schedRun {
	t.Helper()
	h := &cycleHasher{}
	opts = append(opts, lse.WithSeed(seed), lse.WithMetrics(), lse.WithTracer(h))
	b := core.NewBuilder(opts...)
	rng := rand.New(rand.NewSource(seed))
	nChains := 2 + rng.Intn(3)
	for c := 0; c < nChains; c++ {
		src, err := pcl.NewSource(fmt.Sprintf("src%d", c), core.Params{"count": int64(20 + rng.Intn(30))})
		if err != nil {
			t.Fatal(err)
		}
		b.Add(src)
		var prev core.Instance = src
		depth := 1 + rng.Intn(4)
		for d := 0; d < depth; d++ {
			q, err := pcl.NewQueue(fmt.Sprintf("q%d_%d", c, d), core.Params{"capacity": int64(1 + rng.Intn(4))})
			if err != nil {
				t.Fatal(err)
			}
			b.Add(q)
			b.Connect(prev, "out", q, "in")
			prev = q
		}
		snk, err := pcl.NewSink(fmt.Sprintf("snk%d", c), nil)
		if err != nil {
			t.Fatal(err)
		}
		b.Add(snk)
		b.Connect(prev, "out", snk, "in")
	}
	sim, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	var st bytes.Buffer
	sim.Stats().Dump(&st)
	r := schedRun{hashes: h.hashes, stats: st.String()}
	m := sim.Metrics()
	for i, k := range []core.SigKind{core.SigData, core.SigEnable, core.SigAck} {
		r.defaults[i] = m.DefaultFallbacks(k)
		r.breaks[i] = m.CycleBreaks(k)
	}
	return r
}

// passThrough declares ports but no handlers: every one of its signals
// falls to default control — the netlist shape that isolates the engine's
// default-resolution path (and the paper's claim that modules may omit
// control code entirely).
type passThrough struct{ core.Base }

func newPassThrough(name string) *passThrough {
	p := &passThrough{}
	p.Init(name, p)
	p.AddInPort("in")
	p.AddOutPort("out")
	return p
}

// buildDefaultChain wires depth handler-less modules into an acyclic
// pipeline; buildDefaultMesh wires w×h of them into a torus (one large
// cyclic SCC). Shared by the scheduler benchmarks and differential tests.
func buildDefaultChain(t testing.TB, depth int, opts ...core.BuildOption) *core.Sim {
	t.Helper()
	b := core.NewBuilder(opts...)
	first := newPassThrough("pt0")
	b.Add(first)
	var prev core.Instance = first
	for d := 1; d < depth; d++ {
		pt := newPassThrough(fmt.Sprintf("pt%d", d))
		b.Add(pt)
		b.Connect(prev, "out", pt, "in")
		prev = pt
	}
	sim, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func buildDefaultMesh(t testing.TB, w, h int, opts ...core.BuildOption) *core.Sim {
	t.Helper()
	b := core.NewBuilder(opts...)
	grid := make([][]*passThrough, h)
	for y := range grid {
		grid[y] = make([]*passThrough, w)
		for x := range grid[y] {
			grid[y][x] = newPassThrough(fmt.Sprintf("n%d_%d", y, x))
			b.Add(grid[y][x])
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			b.Connect(grid[y][x], "out", grid[y][(x+1)%w], "in")
			b.Connect(grid[y][x], "out", grid[(y+1)%h][x], "in")
		}
	}
	sim, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// buildDefaultAcyclicGrid wires w×h handler-less modules with east and
// south neighbor links but no wraparound: the 2D fan-in/fan-out shape of
// the torus without its cyclic SCC, so the whole netlist levelizes (and
// under the woven engine, weaves). The mesh benchmark runs on this shape
// because the torus is one big cycle — all residue, nothing to weave.
func buildDefaultAcyclicGrid(t testing.TB, w, h int, opts ...core.BuildOption) *core.Sim {
	t.Helper()
	b := core.NewBuilder(opts...)
	grid := make([][]*passThrough, h)
	for y := range grid {
		grid[y] = make([]*passThrough, w)
		for x := range grid[y] {
			grid[y][x] = newPassThrough(fmt.Sprintf("g%d_%d", y, x))
			b.Add(grid[y][x])
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.Connect(grid[y][x], "out", grid[y][x+1], "in")
			}
			if y+1 < h {
				b.Connect(grid[y][x], "out", grid[y+1][x], "in")
			}
		}
	}
	sim, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestSchedulersAgreeOnDefaultNetlists covers the default-control-bound
// shapes the BenchmarkLevelized* benchmarks run: a deep acyclic chain
// (pure static sweep) and a cyclic torus (pure residue worklist with
// cycle breaks every cycle). Bit-identity must hold there too.
func TestSchedulersAgreeOnDefaultNetlists(t *testing.T) {
	shapes := []struct {
		name  string
		build func(t testing.TB, opts ...lse.BuildOption) *core.Sim
	}{
		{"chain-64", func(t testing.TB, opts ...lse.BuildOption) *core.Sim {
			return buildDefaultChain(t, 64, opts...)
		}},
		{"torus-8x8", func(t testing.TB, opts ...lse.BuildOption) *core.Sim {
			return buildDefaultMesh(t, 8, 8, opts...)
		}},
		{"grid-8x8", func(t testing.TB, opts ...lse.BuildOption) *core.Sim {
			return buildDefaultAcyclicGrid(t, 8, 8, opts...)
		}},
	}
	for _, shape := range shapes {
		run := func(opts []lse.BuildOption) schedRun {
			h := &cycleHasher{}
			all := append([]lse.BuildOption{lse.WithMetrics(), lse.WithTracer(h)}, opts...)
			sim := shape.build(t, all...)
			if err := sim.Run(50); err != nil {
				t.Fatal(err)
			}
			var st bytes.Buffer
			sim.Stats().Dump(&st)
			r := schedRun{hashes: h.hashes, stats: st.String()}
			m := sim.Metrics()
			for i, k := range []core.SigKind{core.SigData, core.SigEnable, core.SigAck} {
				r.defaults[i] = m.DefaultFallbacks(k)
				r.breaks[i] = m.CycleBreaks(k)
			}
			return r
		}
		ref := run(schedulerMatrix[0].opts)
		for _, tc := range schedulerMatrix[1:] {
			diffRuns(t, shape.name, tc.name, ref, run(tc.opts), tc.exactCounts)
		}
	}
}

// buildMostlyIdle wires a few live source→queue→sink chains next to a
// large passive fabric of handler-less modules — the mostly-idle shape
// the sparse scheduler's activity gating targets. The chains stay in the
// active region (their sources bear cycle-start handlers); the fabric is
// resolved once on the cycle-0 full sweep and replayed thereafter.
// Shared by the differential tests and the BenchmarkSparse* benchmarks.
func buildMostlyIdle(tb testing.TB, chains, depth, fabricW, fabricH int, rate float64, count int64, opts ...core.BuildOption) *core.Sim {
	tb.Helper()
	b := core.NewBuilder(opts...)
	for c := 0; c < chains; c++ {
		src, err := pcl.NewSource(fmt.Sprintf("src%d", c), core.Params{"rate": rate, "count": count})
		if err != nil {
			tb.Fatal(err)
		}
		b.Add(src)
		var prev core.Instance = src
		for d := 0; d < depth; d++ {
			q, err := pcl.NewQueue(fmt.Sprintf("q%d_%d", c, d), core.Params{"capacity": int64(4)})
			if err != nil {
				tb.Fatal(err)
			}
			b.Add(q)
			b.Connect(prev, "out", q, "in")
			prev = q
		}
		snk, err := pcl.NewSink(fmt.Sprintf("snk%d", c), nil)
		if err != nil {
			tb.Fatal(err)
		}
		b.Add(snk)
		b.Connect(prev, "out", snk, "in")
	}
	grid := make([][]*passThrough, fabricH)
	for y := range grid {
		grid[y] = make([]*passThrough, fabricW)
		for x := range grid[y] {
			grid[y][x] = newPassThrough(fmt.Sprintf("f%d_%d", y, x))
			b.Add(grid[y][x])
		}
	}
	for y := 0; y < fabricH; y++ {
		for x := 0; x < fabricW; x++ {
			b.Connect(grid[y][x], "out", grid[y][(x+1)%fabricW], "in")
			b.Connect(grid[y][x], "out", grid[(y+1)%fabricH][x], "in")
		}
	}
	sim, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return sim
}

// TestSchedulersAgreeOnBurstyNetlists covers random mostly-idle shapes —
// low-rate bursty sources feeding short chains beside a passive fabric,
// with the sources eventually exhausting so the whole netlist goes quiet.
// The activity-gated engine must replay the gated region bit-identically
// through bursts, idle stretches and full exhaustion.
func TestSchedulersAgreeOnBurstyNetlists(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		chains := 1 + rng.Intn(3)
		depth := 1 + rng.Intn(3)
		w, h := 3+rng.Intn(4), 3+rng.Intn(4)
		rate := 0.02 + 0.05*rng.Float64()
		count := int64(3 + rng.Intn(8))
		run := func(opts []lse.BuildOption) schedRun {
			hsh := &cycleHasher{}
			all := append([]lse.BuildOption{lse.WithSeed(seed), lse.WithMetrics(), lse.WithTracer(hsh)}, opts...)
			sim := buildMostlyIdle(t, chains, depth, w, h, rate, count, all...)
			if err := sim.Run(300); err != nil {
				t.Fatal(err)
			}
			var st bytes.Buffer
			sim.Stats().Dump(&st)
			r := schedRun{hashes: hsh.hashes, stats: st.String()}
			m := sim.Metrics()
			for i, k := range []core.SigKind{core.SigData, core.SigEnable, core.SigAck} {
				r.defaults[i] = m.DefaultFallbacks(k)
				r.breaks[i] = m.CycleBreaks(k)
			}
			return r
		}
		ref := run(schedulerMatrix[0].opts)
		for _, tc := range schedulerMatrix[1:] {
			diffRuns(t, fmt.Sprintf("bursty-%d", seed), tc.name, ref, run(tc.opts), tc.exactCounts)
		}
	}
}

// TestMeshScheduleGolden pins the static schedule of the shipped 4x4 mesh
// spec: the routers form exactly one cyclic SCC and the residue carries
// the mesh loop while the terminals levelize.
func TestMeshScheduleGolden(t *testing.T) {
	src, err := os.ReadFile("specs/mesh.lss")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := lse.LoadLSS(string(src), lse.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	info := sim.Schedule()
	if info == nil {
		t.Fatal("default build did not produce a static schedule")
	}
	if info.CyclicSCCs != 1 {
		t.Fatalf("mesh cyclic SCCs = %d, want 1", info.CyclicSCCs)
	}
	if len(info.BreakSites) != 1 {
		t.Fatalf("mesh break sites = %v, want exactly one", info.BreakSites)
	}
	if info.SweepConns == 0 || info.ResidueConns == 0 {
		t.Fatalf("mesh should split between sweep (%d) and residue (%d)", info.SweepConns, info.ResidueConns)
	}
	if got := info.SweepConns + info.ResidueConns; got != len(sim.Conns()) {
		t.Fatalf("fwd partition covers %d conns, want %d", got, len(sim.Conns()))
	}
	if got := info.AckSweepConns + info.AckResidueConns; got != len(sim.Conns()) {
		t.Fatalf("ack partition covers %d conns, want %d", got, len(sim.Conns()))
	}
}

// TestSchedulersAgreeOnTypedNetlists is the two-lane plane's differential
// guard: random source → queue-chain → sink netlists where every module
// independently declares payload "uint64" or "any", mixing scalar-lane,
// spill-lane and forced-spill (mixed payload kinds) connections in one
// netlist. The cycle hash covers both lanes — cycleHasher reads each
// connection through Conn.Data, which serves scalar and spill values
// alike — so lane election must never change what a model computes, only
// where the bytes live. All values are uint64 end to end (boxed sources
// get an explicit uint64 generator) so typed readers downstream of boxed
// drivers exercise the spill-lane unboxing path.
func TestSchedulersAgreeOnTypedNetlists(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		ref := runTypedRandomUnder(t, seed, schedulerMatrix[0].opts...)
		for _, tc := range schedulerMatrix[1:] {
			got := runTypedRandomUnder(t, seed, tc.opts...)
			diffRuns(t, fmt.Sprintf("typed-rand-%d", seed), tc.name, ref, got, tc.exactCounts)
		}
	}
}

func runTypedRandomUnder(t *testing.T, seed int64, opts ...lse.BuildOption) schedRun {
	t.Helper()
	h := &cycleHasher{}
	opts = append(opts, lse.WithSeed(seed), lse.WithMetrics(), lse.WithTracer(h))
	b := core.NewBuilder(opts...)
	rng := rand.New(rand.NewSource(seed))
	payloads := []string{"uint64", "uint64", "any"} // bias toward the fast lane
	pick := func() string { return payloads[rng.Intn(len(payloads))] }
	scalarConns := 0
	nChains := 2 + rng.Intn(3)
	for c := 0; c < nChains; c++ {
		srcPayload := pick()
		srcParams := core.Params{"count": int64(20 + rng.Intn(30)), "payload": srcPayload}
		if srcPayload != "uint64" {
			// Keep the value domain uint64 everywhere so a typed reader
			// downstream of this boxed driver can still unbox.
			srcParams["gen"] = pcl.GenFn(func(rng *rand.Rand, cycle, seq uint64) (any, bool) {
				return seq, true
			})
		}
		src, err := pcl.NewSource(fmt.Sprintf("src%d", c), srcParams)
		if err != nil {
			t.Fatal(err)
		}
		b.Add(src)
		var prev core.Instance = src
		depth := 1 + rng.Intn(4)
		for d := 0; d < depth; d++ {
			q, err := pcl.NewQueue(fmt.Sprintf("q%d_%d", c, d),
				core.Params{"capacity": int64(1 + rng.Intn(4)), "payload": pick()})
			if err != nil {
				t.Fatal(err)
			}
			b.Add(q)
			b.Connect(prev, "out", q, "in")
			prev = q
		}
		snk, err := pcl.NewSink(fmt.Sprintf("snk%d", c), core.Params{"payload": pick()})
		if err != nil {
			t.Fatal(err)
		}
		b.Add(snk)
		b.Connect(prev, "out", snk, "in")
	}
	sim, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sim.Conns() {
		if c.Scalar() {
			scalarConns++
		}
	}
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	if info := sim.Schedule(); info != nil && info.ScalarConns != scalarConns {
		t.Fatalf("schedule reports %d scalar conns, counted %d", info.ScalarConns, scalarConns)
	}
	var st bytes.Buffer
	sim.Stats().Dump(&st)
	r := schedRun{hashes: h.hashes, stats: st.String()}
	m := sim.Metrics()
	for i, k := range []core.SigKind{core.SigData, core.SigEnable, core.SigAck} {
		r.defaults[i] = m.DefaultFallbacks(k)
		r.breaks[i] = m.CycleBreaks(k)
	}
	return r
}
