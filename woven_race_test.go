package liberty_test

import (
	"os"
	"runtime"
	"sync"
	"testing"

	core "liberty/internal/core"
	"liberty/lse"
)

// TestWovenConcurrentSessionsRace stamps 2×GOMAXPROCS sessions from one
// woven-compiled Program and steps them all concurrently. The woven plan
// lives in the immutable Program and is shared by pointer across every
// session, so under -race this pins the plan's read-only discipline: the
// fused kernels, dirty runs and handler rosters must never be written
// after compile. Determinism is the oracle — every session runs the same
// seed, so all hash sequences must be identical.
func TestWovenConcurrentSessionsRace(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	prog, err := core.Compile(checkpointAssemble("uint64"),
		core.WithSeed(7), core.WithScheduler(core.SchedulerWoven))
	if err != nil {
		t.Fatal(err)
	}
	const cycles, sessions = 60, 8
	hashes := make([][]uint64, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := &cycleHasher{}
			sim, err := prog.NewSim(core.WithTracer(h))
			if err != nil {
				errs[i] = err
				return
			}
			defer sim.Close()
			if errs[i] = sim.Run(cycles); errs[i] != nil {
				return
			}
			hashes[i] = h.hashes
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	for i := 1; i < sessions; i++ {
		for c := range hashes[0] {
			if hashes[i][c] != hashes[0][c] {
				t.Fatalf("session %d diverges from session 0 at cycle %d", i, c)
			}
		}
	}
}

// TestWovenMeshWorkersRace runs the handler-heavy 4x4 mesh (one large
// router loop, so the whole region is interpreted fallback) under the
// woven engine with more workers than the netlist needs and a
// hair-trigger parallel threshold: every fallback reactive round goes
// through the phase pool. Under -race this exercises the woven engine's
// interpreted residue against the parallel worker protocol; the hashes
// and the exact default/break counts must stay bit-identical to the
// sequential scanner.
func TestWovenMeshWorkersRace(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	src, err := os.ReadFile("specs/mesh.lss")
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 40
	ref := runSpecUnder(t, string(src), cycles, lse.WithScheduler(lse.SchedulerSequential))
	got := runSpecUnder(t, string(src), cycles,
		lse.WithScheduler(lse.SchedulerWoven),
		lse.WithWorkers(4),
		lse.WithParallelThreshold(1))
	diffRuns(t, "mesh-race", "woven-workers", ref, got, true)
}
