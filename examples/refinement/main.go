// Iterative refinement and mixed abstraction (§2.2).
//
// Part 1 (claim C3): a processor model is built up in stages — fetch
// only, then fetch+decode, then the full five-stage pipeline. Every stage
// compiles into a *working* simulator; unspecified structure is covered
// by default control semantics. The cycle count grows as modeled detail
// grows.
//
// Part 2 (claim C2): the same network model is driven first by a
// statistical packet generator, then by a detailed processor wrapped in a
// network interface — swapping one instance, touching nothing else. The
// NI module is defined right here through the public API, the way a user
// extends the environment.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"liberty/internal/ccl"
	"liberty/internal/isa"
	"liberty/internal/pcl"
	"liberty/internal/upl"
	"liberty/lse"
)

func main() {
	part1()
	part2()
}

// --- Part 1: iterative refinement ---

func part1() {
	fmt.Println("== C3: iterative refinement — every stage is a working simulator ==")
	prog := isa.MustAssemble(isa.ProgSum)

	stages := []struct {
		name  string
		build func(b *lse.Builder) (done func() bool, err error)
	}{
		{"fetch only", func(b *lse.Builder) (func() bool, error) {
			emu := isa.NewCPU()
			prog.LoadInto(emu.Mem)
			emu.Reset(prog.Entry)
			f, err := upl.NewFetchStage("cpu/fetch", emu, upl.FetchCfg{})
			if err != nil {
				return nil, err
			}
			snk, err := pcl.NewSink("drain", nil)
			if err != nil {
				return nil, err
			}
			b.Add(f)
			b.Add(snk)
			b.Connect(f, "out", snk, "in")
			return f.Done, nil
		}},
		{"fetch+decode", func(b *lse.Builder) (func() bool, error) {
			emu := isa.NewCPU()
			prog.LoadInto(emu.Mem)
			emu.Reset(prog.Entry)
			f, err := upl.NewFetchStage("cpu/fetch", emu, upl.FetchCfg{})
			if err != nil {
				return nil, err
			}
			d := upl.NewDecodeStage("cpu/decode", upl.DefaultLatencies())
			snk, err := pcl.NewSink("drain", nil)
			if err != nil {
				return nil, err
			}
			b.Add(f)
			b.Add(d)
			b.Add(snk)
			b.Connect(f, "out", d, "in")
			b.Connect(d, "out", snk, "in")
			return f.Done, nil
		}},
		{"full 5-stage", func(b *lse.Builder) (func() bool, error) {
			cpu, err := upl.NewInOrderCPU(b, "cpu", prog, upl.CPUCfg{})
			if err != nil {
				return nil, err
			}
			return cpu.Done, nil
		}},
	}
	for _, st := range stages {
		b := lse.NewBuilder()
		done, err := st.build(b)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		ok, err := sim.RunUntil(func(*lse.Sim) bool { return done() }, 1_000_000)
		if err != nil || !ok {
			log.Fatalf("stage %q: ok=%v err=%v", st.name, ok, err)
		}
		fmt.Printf("  %-14s -> runs to completion in %6d cycles\n", st.name, sim.Now())
	}
	fmt.Println()
}

// --- Part 2: mixed abstraction ---

// cpuNI wraps a detailed processor as a traffic source: every committed
// instruction batch becomes a packet — the "network interface controller
// for a microprocessor" that replaces the statistical generator.
type cpuNI struct {
	lse.Base
	Out *lse.Port

	cpu     *upl.InOrderCPU
	last    uint64
	backlog int
	seq     uint64
}

func newCPUNI(name string, cpu *upl.InOrderCPU) *cpuNI {
	n := &cpuNI{cpu: cpu}
	n.Init(name, n)
	n.Out = n.AddOutPort("out", lse.PortOpts{MinWidth: 1, MaxWidth: 1})
	n.OnCycleStart(n.cycleStart)
	n.OnCycleEnd(n.cycleEnd)
	return n
}

func (n *cpuNI) cycleStart() {
	retired := n.cpu.Retired()
	if retired/8 > n.last {
		n.backlog += int(retired/8 - n.last)
		n.last = retired / 8
	}
	if n.backlog > 0 {
		n.Out.Send(0, &ccl.Packet{
			ID: n.seq, Src: 0, Dst: 1, Size: 2,
			Injected: n.Now(), Payload: "commit-batch",
		})
		n.Out.Enable(0)
	} else {
		n.Out.SendNothing(0)
		n.Out.Disable(0)
	}
}

func (n *cpuNI) cycleEnd() {
	if n.backlog > 0 && n.Out.Transferred(0) {
		n.backlog--
		n.seq++
	}
}

func part2() {
	fmt.Println("== C2: mixed abstraction — swap the generator, keep the network ==")

	// The shared fabric: a 2-port crossbar, node 0 -> node 1.
	type result struct {
		delivered int64
		meanLat   float64
	}
	runWith := func(attach func(b *lse.Builder, nw *ccl.Network) (func() bool, error)) result {
		b := lse.NewBuilder(lse.WithSeed(123))
		nw, err := ccl.BuildCrossbar(b, "net", 2, 4)
		if err != nil {
			log.Fatal(err)
		}
		snk, err := pcl.NewSink("snk", nil)
		if err != nil {
			log.Fatal(err)
		}
		b.Add(snk)
		if err := nw.ConnectSink(b, 1, snk, "in"); err != nil {
			log.Fatal(err)
		}
		drain, err := pcl.NewSink("drain0", nil)
		if err != nil {
			log.Fatal(err)
		}
		b.Add(drain)
		nw.ConnectSink(b, 0, drain, "in")
		done, err := attach(b, nw)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sim.RunUntil(func(*lse.Sim) bool { return done() }, 200_000); err != nil {
			log.Fatal(err)
		}
		return result{delivered: snk.Received(), meanLat: snk.MeanLatency()}
	}

	// (a) statistical packet generator.
	statistical := runWith(func(b *lse.Builder, nw *ccl.Network) (func() bool, error) {
		src, err := pcl.NewSource("gen", lse.Params{
			"rate":  0.05,
			"count": 40,
			"gen": pcl.GenFn(func(rng *rand.Rand, cycle, seq uint64) (any, bool) {
				return &ccl.Packet{ID: seq, Src: 0, Dst: 1, Size: 2, Injected: cycle}, true
			}),
		})
		if err != nil {
			return nil, err
		}
		b.Add(src)
		if err := nw.ConnectSource(b, 0, src, "out"); err != nil {
			return nil, err
		}
		return src.Exhausted, nil
	})
	fmt.Printf("  statistical generator: %3d packets delivered, mean latency %.1f\n",
		statistical.delivered, statistical.meanLat)

	// (b) detailed processor behind a network interface — only the source
	// instance changes.
	detailed := runWith(func(b *lse.Builder, nw *ccl.Network) (func() bool, error) {
		cpu, err := upl.NewInOrderCPU(b, "cpu", isa.MustAssemble(isa.ProgSort), upl.CPUCfg{})
		if err != nil {
			return nil, err
		}
		ni := newCPUNI("ni", cpu)
		b.Add(ni)
		if err := nw.ConnectSource(b, 0, ni, "out"); err != nil {
			return nil, err
		}
		return func() bool { return cpu.Done() && ni.backlog == 0 }, nil
	})
	fmt.Printf("  detailed CPU + NI:     %3d packets delivered, mean latency %.1f\n",
		detailed.delivered, detailed.meanLat)
	fmt.Println("  same network model served both abstraction levels unchanged")
}
