// "Liberation" (§1): the paper proposes a smooth transition for existing
// simulators "through encapsulation into LSE modules". Here the
// hand-written monolithic five-stage pipeline from internal/mono — the
// stand-in for a SimpleScalar/RSIM-class legacy simulator — is wrapped as
// an ordinary LSE module. Its retirement events flow out of a port under
// the 3-signal contract, and a slow downstream consumer genuinely stalls
// the legacy simulator's writeback stage through handshake backpressure.
package main

import (
	"fmt"
	"log"

	core "liberty/internal/core"
	"liberty/internal/isa"
	"liberty/internal/liberate"
	"liberty/internal/pcl"
	"liberty/internal/upl"
)

func run(queueCap int, everyN uint64) (legacyCycles uint64, stalls int64, events int64) {
	prog := isa.MustAssemble(isa.ProgSum)
	lp, err := liberate.NewLiberatedPipeline(prog, upl.CPUCfg{})
	if err != nil {
		log.Fatal(err)
	}
	mod := liberate.New("legacy", lp, 2)

	b := core.NewBuilder()
	b.Add(mod)
	q, err := pcl.NewQueue("q", core.Params{"capacity": queueCap})
	if err != nil {
		log.Fatal(err)
	}
	b.Add(q)
	b.Connect(mod, "out", q, "in")
	// A throttled consumer: accepts one event every everyN cycles.
	gate, err := pcl.NewClockGate("gate", core.Params{"divisor": int(everyN)})
	if err != nil {
		log.Fatal(err)
	}
	snk, err := pcl.NewSink("snk", nil)
	if err != nil {
		log.Fatal(err)
	}
	b.Add(gate)
	b.Add(snk)
	b.Connect(q, "out", gate, "in")
	b.Connect(gate, "out", snk, "in")

	sim, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	ok, err := sim.RunUntil(func(*core.Sim) bool {
		return mod.Done() && snk.Received() > 0 && q.Len() == 0
	}, 1_000_000)
	if err != nil || !ok {
		log.Fatalf("run incomplete: ok=%v err=%v", ok, err)
	}
	return lp.Pipeline().Cycle(), sim.Stats().CounterValue("legacy.stall_cycles"), snk.Received()
}

func main() {
	fmt.Println("legacy monolithic pipeline encapsulated as an LSE module")
	fmt.Println("(retire events -> queue -> clock-gated consumer)")
	fmt.Println()
	for _, everyN := range []uint64{1, 4, 16} {
		cycles, stalls, events := run(4, everyN)
		fmt.Printf("consumer accepts every %2d cycles: legacy ran %5d cycles, "+
			"stalled %5d, delivered %d retire events\n", everyN, cycles, stalls, events)
	}
	fmt.Println()
	fmt.Println("the slower the LSE-side consumer, the longer the unmodified")
	fmt.Println("legacy simulator takes — backpressure crosses the encapsulation")
	fmt.Println("boundary exactly as if the code had been rewritten structurally.")
}
