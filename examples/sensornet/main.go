// Figure 2(b): sensor network nodes — each node composes an ADC sampling
// source, a DSP filter stage and a GP buffering queue (UPL/PCL pieces on
// the node's local interconnect), linked by a radio interface to a shared
// collision-prone wireless channel from CCL. Filtered readings accumulate
// at a base station.
package main

import (
	"fmt"
	"log"

	"liberty/internal/ccl"
	core "liberty/internal/core"
	"liberty/internal/systems"
)

func main() {
	const (
		nodes     = 4
		samples   = 50
		threshold = 40
	)
	b := core.NewBuilder(core.WithSeed(11))
	net, err := systems.BuildSensorNet(b, "sn", nodes, samples, threshold)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	ok, err := sim.RunUntil(func(*core.Sim) bool { return net.Exhausted() }, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("sensor net did not drain")
	}
	if err := sim.Run(300); err != nil { // let in-flight transmissions land
		log.Fatal(err)
	}

	st := sim.Stats()
	var sampled, dropped int64
	for i, n := range net.Nodes {
		s := st.CounterValue(n.ADC.Name() + ".injected")
		d := n.DSP.Dropped()
		fmt.Printf("node %d: sampled %2d, DSP dropped %2d (below %d)\n", i, s, d, threshold)
		sampled += s
		dropped += d
	}
	fmt.Printf("\nwireless: %d transmissions, %d contention events, %d lost\n",
		st.CounterValue("sn/air.sent"), net.Air.Collisions(), st.CounterValue("sn/air.lost"))
	fmt.Printf("base station received %d readings (of %d sampled; %d filtered out)\n",
		net.Base.Received(), sampled, dropped)
	fmt.Printf("mean air latency: %.1f cycles\n", net.Base.MeanLatency())

	sum := 0
	for _, v := range net.Base.Values() {
		sum += v.(*ccl.Packet).Payload.(systems.Reading).Value
	}
	if n := net.Base.Received(); n > 0 {
		fmt.Printf("mean delivered reading: %.1f (threshold %d)\n", float64(sum)/float64(n), threshold)
	}
}
