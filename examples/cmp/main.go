// Figure 2(a): a chip multiprocessor — general-purpose cores behind
// network interfaces on an on-chip mesh, glued with directory coherence.
// GP modules come from UPL-style trace cores, the fabric from CCL, the
// coherence engine and NIs from MPL, exactly as §3 sketches. The run
// reports memory latency, coherence traffic and Orion network power.
package main

import (
	"fmt"
	"log"
	"os"

	"liberty/internal/ccl"
	core "liberty/internal/core"
	"liberty/internal/systems"
)

func main() {
	b := core.NewBuilder(core.WithSeed(42))
	cmp, err := systems.BuildCMP(b, "cmp", systems.CMPCfg{
		W: 4, H: 4, RefsPer: 150, SharedPct: 30, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	ok, err := sim.RunUntil(func(*core.Sim) bool { return cmp.Done() }, 500_000)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatalf("CMP did not finish: %d refs completed", cmp.Completed())
	}

	fmt.Printf("16-core CMP finished %d memory references in %d cycles\n",
		cmp.Completed(), sim.Now())
	fmt.Printf("mean memory latency: %.1f cycles\n\n", cmp.MeanLatency())

	st := sim.Stats()
	var hits, misses, invs, recalls int64
	for i, l1 := range cmp.Dir.L1s {
		hits += st.CounterValue(l1.Name() + ".hits")
		misses += st.CounterValue(l1.Name() + ".misses")
		invs += st.CounterValue(l1.Name() + ".invalidations")
		_ = i
	}
	for _, h := range cmp.Dir.Homes {
		recalls += st.CounterValue(h.Name() + ".recalls_sent")
	}
	fmt.Printf("coherence: %d hits, %d misses, %d invalidations, %d recalls\n",
		hits, misses, invs, recalls)
	if err := cmp.Dir.CheckCoherenceInvariant(sharedLines()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("single-writer/multiple-reader invariant: OK")

	fmt.Println("\nnetwork power (Orion model):")
	rep := ccl.MeasurePower(sim, cmp.Dir.Net, ccl.DefaultPowerParams())
	rep.Dump(os.Stdout)
}

func sharedLines() []uint32 {
	lines := make([]uint32, 16)
	for i := range lines {
		lines[i] = uint32(i) * 32
	}
	return lines
}
