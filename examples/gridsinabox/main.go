// Figure 2(c): a petaflops "grid-in-a-box" — the same GP/NI/coherence
// modules as the chip multiprocessor, re-parameterized and re-composed
// onto a board-to-board torus fabric. That a CMP and a machine-room grid
// are the *same components at a different scale* is exactly the reuse
// argument of §3's "careful generalization of modules".
package main

import (
	"fmt"
	"log"
	"os"

	"liberty/internal/ccl"
	core "liberty/internal/core"
	"liberty/internal/systems"
)

func main() {
	b := core.NewBuilder(core.WithSeed(3))
	grid, err := systems.BuildCMP(b, "grid", systems.CMPCfg{
		W: 4, H: 2, Torus: true, // 8 boards on a wraparound backplane
		RefsPer: 120, SharedPct: 20, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	ok, err := sim.RunUntil(func(*core.Sim) bool { return grid.Done() }, 500_000)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatalf("grid did not finish: %d refs completed", grid.Completed())
	}

	fmt.Printf("8-board grid finished %d references in %d cycles\n",
		grid.Completed(), sim.Now())
	fmt.Printf("mean remote-memory latency: %.1f cycles\n", grid.MeanLatency())

	var pkts, flits int64
	for _, l := range grid.Dir.Net.Links {
		pkts += sim.Stats().CounterValue(l.Name() + ".packets")
		flits += sim.Stats().CounterValue(l.Name() + ".flits")
	}
	fmt.Printf("backplane traffic: %d coherence messages, %d flits over %d links\n",
		pkts, flits, len(grid.Dir.Net.Links))

	fmt.Println("\nfabric power (Orion model):")
	ccl.MeasurePower(sim, grid.Dir.Net, ccl.DefaultPowerParams()).Dump(os.Stdout)
}
