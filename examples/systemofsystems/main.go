// Figure 2(d): the complex system of systems — sensor clusters sampling
// and filtering in the field, wireless channels back to gateway nodes,
// a chip-multiprocessor-class backbone fabric carrying aggregated
// summaries to a base camp, where an out-of-order "petaflops grid" core
// crunches beside the collector. Every level is composed hierarchically
// from the same component libraries.
package main

import (
	"fmt"
	"log"

	"liberty/internal/ccl"
	core "liberty/internal/core"
	"liberty/internal/systems"
)

func main() {
	b := core.NewBuilder(core.WithSeed(2026))
	sos, err := systems.BuildSoS(b, "sos", systems.SoSCfg{
		Clusters:   3,
		SensorsPer: 3,
		SamplesPer: 24,
		Threshold:  25,
		Batch:      4,
		MeshW:      2,
		MeshH:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	ok, err := sim.RunUntil(func(*core.Sim) bool {
		return sos.Grid.Done() && sos.SummariesDelivered() >= 6
	}, 500_000)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatalf("incomplete: readings=%d summaries=%d", sos.TotalReadings(), sos.SummariesDelivered())
	}

	fmt.Printf("system of systems after %d cycles:\n\n", sim.Now())
	for i, cl := range sos.Clusters {
		st := sim.Stats()
		sent := st.CounterValue(cl.Air.Name() + ".sent")
		fmt.Printf("cluster %d: %d radio transmissions, %d contention events\n",
			i, sent, cl.Air.Collisions())
	}
	fmt.Printf("\ngateways aggregated %d readings into summaries\n", sos.TotalReadings())
	fmt.Printf("base camp collector received %d summaries over the backbone\n",
		sos.SummariesDelivered())

	total, count := 0, 0
	for _, v := range sos.Collector.Values() {
		s := v.(*ccl.Packet).Payload.(systems.Summary)
		total += s.Sum
		count += s.Count
	}
	if count > 0 {
		fmt.Printf("aggregate field reading mean: %.1f over %d samples\n",
			float64(total)/float64(count), count)
	}
	fmt.Printf("\nbase-camp analysis core: retired %d instructions (IPC %.2f), sorted output verified=%v\n",
		sos.Grid.Retired(), sos.Grid.IPC(sim), sos.Grid.Emu().Halted)
}
