// Quickstart: build the same tiny system twice — once through the Go
// builder API and once from an LSS specification — and show they behave
// identically. This is the paper's Figure 1 in miniature: a structural
// description goes in, an executable simulator comes out.
package main

import (
	"fmt"
	"log"
	"os"

	"liberty/lse"
)

const spec = `
instance src : pcl.source(rate = 0.7, count = 100);
instance q   : pcl.queue(capacity = 4);
instance snk : pcl.sink();
src.out -> q.in;
q.out   -> snk.in;
`

func main() {
	// --- Go API ---
	b := lse.NewBuilder(lse.WithSeed(7))
	src, err := b.Instantiate("pcl.source", "src", lse.Params{"rate": 0.7, "count": 100})
	if err != nil {
		log.Fatal(err)
	}
	q, err := b.Instantiate("pcl.queue", "q", lse.Params{"capacity": 4})
	if err != nil {
		log.Fatal(err)
	}
	snk, err := b.Instantiate("pcl.sink", "snk", nil)
	if err != nil {
		log.Fatal(err)
	}
	b.Connect(src, "out", q, "in")
	b.Connect(q, "out", snk, "in")
	sim, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(400); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== built through the Go API ==")
	sim.Stats().Dump(os.Stdout)

	// --- LSS ---
	sim2, err := lse.LoadLSS(spec, lse.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	if err := sim2.Run(400); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== built from the LSS specification ==")
	sim2.Stats().Dump(os.Stdout)

	a := sim.Stats().CounterValue("snk.received")
	z := sim2.Stats().CounterValue("snk.received")
	fmt.Printf("\nreceived: go=%d lss=%d (identical: %v)\n", a, z, a == z)
}
