package liberty_test

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	core "liberty/internal/core"
	"liberty/internal/pcl"
)

// checkpointAssemble returns the deterministic recipe the checkpoint and
// concurrency tests compile: two rate-gated sources competing through an
// arbiter into a queue → delay → sink pipeline, plus an independent
// chain. Every pcl template with behavioral state (source sequence/
// pending, arbiter grant rotor, queue entries, delay lanes) is on the
// path, and the sub-unit rates keep the RNG streams hot so checkpointing
// must replay stream positions exactly. payload="uint64" swaps the
// independent chain onto the scalar fast lane.
func checkpointAssemble(payload string) func(*core.Builder) error {
	return func(b *core.Builder) error {
		add := func(inst core.Instance, err error) (core.Instance, error) {
			if err != nil {
				return nil, err
			}
			b.Add(inst)
			return inst, nil
		}
		src0, err := add(pcl.NewSource("src0", core.Params{"rate": 0.7}))
		if err != nil {
			return err
		}
		src1, err := add(pcl.NewSource("src1", core.Params{"rate": 0.45}))
		if err != nil {
			return err
		}
		arb, err := add(pcl.NewArbiter("arb", nil))
		if err != nil {
			return err
		}
		q, err := add(pcl.NewQueue("q", core.Params{"capacity": int64(3)}))
		if err != nil {
			return err
		}
		dly, err := add(pcl.NewDelay("dly", core.Params{"latency": int64(2)}))
		if err != nil {
			return err
		}
		snk, err := add(pcl.NewSink("snk", nil))
		if err != nil {
			return err
		}
		for _, c := range [][4]any{
			{src0, "out", arb, "in"},
			{src1, "out", arb, "in"},
			{arb, "out", q, "in"},
			{q, "out", dly, "in"},
			{dly, "out", snk, "in"},
		} {
			if err := b.Connect(c[0].(core.Instance), c[1].(string), c[2].(core.Instance), c[3].(string)); err != nil {
				return err
			}
		}
		// Independent chain; payload="uint64" puts it on the scalar lane.
		tsrc, err := add(pcl.NewSource("tsrc", core.Params{"rate": 0.6, "payload": payload}))
		if err != nil {
			return err
		}
		tq, err := add(pcl.NewQueue("tq", core.Params{"capacity": int64(2), "payload": payload}))
		if err != nil {
			return err
		}
		tsnk, err := add(pcl.NewSink("tsnk", core.Params{"payload": payload}))
		if err != nil {
			return err
		}
		if err := b.Connect(tsrc, "out", tq, "in"); err != nil {
			return err
		}
		return b.Connect(tq, "out", tsnk, "in")
	}
}

// runStamped stamps a session from prog with a cycle hasher attached,
// runs it for cycles and returns the hash sequence and statistics dump.
func runStamped(t *testing.T, prog *core.Program, cycles uint64) ([]uint64, string) {
	t.Helper()
	h := &cycleHasher{}
	sim, err := prog.NewSim(core.WithTracer(h))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(cycles); err != nil {
		t.Fatal(err)
	}
	var st bytes.Buffer
	sim.Stats().Dump(&st)
	return h.hashes, st.String()
}

// TestCheckpointRestoreBitIdentical is the checkpoint oracle: run a
// session to cycle k, snapshot, restore onto a fresh session and run the
// remainder. The restored run's per-cycle scheddiff hashes and its final
// statistics dump must be bit-identical to an uninterrupted run — across
// the sequential, levelized, sparse and woven engines, and across boxed
// and typed (uint64-lane) payloads.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	const snapAt, total = 60, 140
	engines := []struct {
		name string
		kind core.SchedulerKind
	}{
		{"sequential", core.SchedulerSequential},
		{"levelized", core.SchedulerLevelized},
		{"sparse", core.SchedulerSparse},
		{"woven", core.SchedulerWoven},
	}
	for _, payload := range []string{"any", "uint64"} {
		for _, eng := range engines {
			t.Run(fmt.Sprintf("%s/%s", payload, eng.name), func(t *testing.T) {
				prog, err := core.Compile(checkpointAssemble(payload),
					core.WithSeed(7), core.WithScheduler(eng.kind))
				if err != nil {
					t.Fatal(err)
				}
				refHashes, refStats := runStamped(t, prog, total)
				if len(refHashes) != total {
					t.Fatalf("reference run hashed %d cycles, want %d", len(refHashes), total)
				}

				h1 := &cycleHasher{}
				simA, err := prog.NewSim(core.WithTracer(h1))
				if err != nil {
					t.Fatal(err)
				}
				if err := simA.Run(snapAt); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := simA.Snapshot(&buf); err != nil {
					t.Fatal(err)
				}
				simA.Close()
				for i := 0; i < snapAt; i++ {
					if h1.hashes[i] != refHashes[i] {
						t.Fatalf("pre-snapshot run diverges from reference at cycle %d", i)
					}
				}

				h2 := &cycleHasher{}
				simB, err := prog.Restore(bytes.NewReader(buf.Bytes()), core.WithTracer(h2))
				if err != nil {
					t.Fatal(err)
				}
				defer simB.Close()
				if got := simB.Now(); got != snapAt {
					t.Fatalf("restored session resumes at cycle %d, want %d", got, snapAt)
				}
				if err := simB.Run(total - snapAt); err != nil {
					t.Fatal(err)
				}
				if len(h2.hashes) != total-snapAt {
					t.Fatalf("restored run hashed %d cycles, want %d", len(h2.hashes), total-snapAt)
				}
				for i, h := range h2.hashes {
					if h != refHashes[snapAt+i] {
						t.Fatalf("%s/%s: restored run diverges from the uninterrupted one at cycle %d",
							payload, eng.name, snapAt+i)
					}
				}
				var st bytes.Buffer
				simB.Stats().Dump(&st)
				if st.String() != refStats {
					t.Fatalf("restored statistics diverge:\n--- uninterrupted\n%s--- restored\n%s",
						refStats, st.String())
				}
			})
		}
	}
}

// TestCheckpointCrossEngineWoven pins scheduler independence of the
// snapshot format: the fingerprint hashes structure, not the engine, so
// a snapshot taken under the woven engine restores into a levelized
// compile of the same recipe (and vice versa) and continues the
// reference hash sequence bit-for-bit. This is the woven engine's
// strongest external soundness check — its replayed region must land
// exactly the state the interpreted engines compute.
func TestCheckpointCrossEngineWoven(t *testing.T) {
	const snapAt, total = 60, 140
	for _, payload := range []string{"any", "uint64"} {
		for _, dir := range []struct {
			name     string
			from, to core.SchedulerKind
		}{
			{"woven-to-levelized", core.SchedulerWoven, core.SchedulerLevelized},
			{"levelized-to-woven", core.SchedulerLevelized, core.SchedulerWoven},
		} {
			t.Run(fmt.Sprintf("%s/%s", payload, dir.name), func(t *testing.T) {
				progFrom, err := core.Compile(checkpointAssemble(payload),
					core.WithSeed(7), core.WithScheduler(dir.from))
				if err != nil {
					t.Fatal(err)
				}
				progTo, err := core.Compile(checkpointAssemble(payload),
					core.WithSeed(7), core.WithScheduler(dir.to))
				if err != nil {
					t.Fatal(err)
				}
				refHashes, refStats := runStamped(t, progTo, total)

				simA, err := progFrom.NewSim()
				if err != nil {
					t.Fatal(err)
				}
				if err := simA.Run(snapAt); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := simA.Snapshot(&buf); err != nil {
					t.Fatal(err)
				}
				simA.Close()

				h := &cycleHasher{}
				simB, err := progTo.Restore(bytes.NewReader(buf.Bytes()), core.WithTracer(h))
				if err != nil {
					t.Fatal(err)
				}
				defer simB.Close()
				if err := simB.Run(total - snapAt); err != nil {
					t.Fatal(err)
				}
				for i, got := range h.hashes {
					if got != refHashes[snapAt+i] {
						t.Fatalf("cross-engine restore diverges from the %s reference at cycle %d",
							dir.to, snapAt+i)
					}
				}
				var st bytes.Buffer
				simB.Stats().Dump(&st)
				if st.String() != refStats {
					t.Fatalf("cross-engine statistics diverge:\n--- reference\n%s--- restored\n%s",
						refStats, st.String())
				}
			})
		}
	}
}

// TestRestoreRejectsForeignSnapshot pins the fingerprint guard: a
// snapshot taken under one program must not restore into a structurally
// different one.
func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	progA, err := core.Compile(checkpointAssemble("any"), core.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	progB, err := core.Compile(checkpointAssemble("uint64"), core.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := progA.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := progB.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore accepted a snapshot from a structurally different program")
	}
}

// TestProgramConcurrentSims stamps many sessions from one compiled
// program across goroutines and runs them in parallel — the tentpole
// claim of the Program/State split. Run under -race in CI; with a shared
// seed every session must also produce the identical hash sequence,
// proving the sessions share only immutable artifacts.
func TestProgramConcurrentSims(t *testing.T) {
	prog, err := core.Compile(checkpointAssemble("uint64"), core.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	hashes := make([][]uint64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := &cycleHasher{}
			sim, err := prog.NewSim(core.WithTracer(h))
			if err != nil {
				errs[i] = err
				return
			}
			defer sim.Close()
			if err := sim.Run(100); err != nil {
				errs[i] = err
				return
			}
			hashes[i] = h.hashes
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if len(hashes[i]) != len(hashes[0]) {
			t.Fatalf("session %d hashed %d cycles, session 0 hashed %d", i, len(hashes[i]), len(hashes[0]))
		}
		for c := range hashes[i] {
			if hashes[i][c] != hashes[0][c] {
				t.Fatalf("session %d diverges from session 0 at cycle %d under a shared seed", i, c)
			}
		}
	}
}
