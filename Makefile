GO ?= go

.PHONY: check vet build test race bench bench-smoke bench-par bench-weave serve-smoke lint

## check: full gate — vet, build, and the test suite under the race detector.
check: vet build race

vet:
	$(GO) vet ./...

## lint: static analysis — lslint over the spec corpus (fails on
## error-severity diagnostics; warnings tolerated) and the vetlse phase
## checker over every Go package via go vet.
lint:
	$(GO) build -o bin/lslint ./cmd/lslint
	$(GO) build -o bin/vetlse ./cmd/vetlse
	./bin/lslint specs/*.lss examples || [ $$? -eq 1 ]
	$(GO) vet -vettool=$$(pwd)/bin/vetlse ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-smoke: fast CI sanity pass over the scheduler benchmarks, gated
## against the checked-in BENCH_10.json baseline (fail on >25% slowdown,
## or on allocs/op above a baselined zero-alloc row). Three samples per
## benchmark; benchguard compares the min of them, so one noisy sample
## on a shared host doesn't fail the gate.
bench-smoke:
	$(GO) test -bench='BenchmarkLevelized|BenchmarkA1|BenchmarkSparse|BenchmarkTyped|BenchmarkNewSimFromProgram|BenchmarkSessionStampHTTP|BenchmarkDataflow|BenchmarkPruned|BenchmarkPartitionedMesh|BenchmarkWoven' -benchtime=200x -benchmem -count=3 -run=^$$ . | tee bench-smoke.out
	$(GO) run ./tools/benchguard -baseline BENCH_10.json bench-smoke.out
	@rm -f bench-smoke.out

## bench-par: partitioned-scheduler scaling sweep — the busy-torus
## benchmark across GOMAXPROCS 1,2,4,8, gated two ways: against the
## BENCH_10.json baseline, and workers=8 must not be slower than
## workers=1 (benchguard -notslower; executors are capped at GOMAXPROCS,
## so on a single-CPU host the 8-worker row degrades to sequential and
## ties rather than loses).
bench-par:
	$(GO) test -bench='BenchmarkPartitionedMesh' -benchtime=200x -benchmem -cpu=1,2,4,8 -count=3 -run=^$$ . | tee bench-par.out
	$(GO) run ./tools/benchguard -baseline BENCH_10.json \
		-notslower 'BenchmarkPartitionedMesh/workers=8<=BenchmarkPartitionedMesh/workers=1' bench-par.out
	@rm -f bench-par.out

## bench-weave: woven-scheduler acceptance gate — the default-control
## pipeline and acyclic grid under interpreted levelized vs woven, gated
## two ways: against the BENCH_10.json baseline, and the woven rows must
## never be slower than their levelized twins from the same run
## (benchguard -notslower; the issue target is >=2x, the baseline pins
## ~130x, and the comparative gate keeps the direction honest on any
## host speed).
bench-weave:
	$(GO) test -bench='BenchmarkWoven' -benchtime=200x -benchmem -count=3 -run=^$$ . | tee bench-weave.out
	$(GO) run ./tools/benchguard -baseline BENCH_10.json \
		-notslower 'BenchmarkWovenPipeline/woven<=BenchmarkWovenPipeline/levelized' \
		-notslower 'BenchmarkWovenMesh/woven<=BenchmarkWovenMesh/levelized' bench-weave.out
	@rm -f bench-weave.out

## serve-smoke: end-to-end daemon smoke — build lsd, spawn it as a real
## process, drive submit/stamp/run/observe/snapshot/restore over HTTP,
## then SIGINT it and require a clean shutdown.
serve-smoke:
	$(GO) build -o bin/lsd ./cmd/lsd
	$(GO) run ./tools/servesmoke -lsd bin/lsd
