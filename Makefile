GO ?= go

.PHONY: check vet build test race bench bench-smoke lint

## check: full gate — vet, build, and the test suite under the race detector.
check: vet build race

vet:
	$(GO) vet ./...

## lint: static analysis — lslint over the spec corpus (fails on
## error-severity diagnostics; warnings tolerated) and the vetlse phase
## checker over every Go package via go vet.
lint:
	$(GO) build -o bin/lslint ./cmd/lslint
	$(GO) build -o bin/vetlse ./cmd/vetlse
	./bin/lslint specs examples || [ $$? -eq 1 ]
	$(GO) vet -vettool=$$(pwd)/bin/vetlse ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-smoke: fast CI sanity pass over the scheduler benchmarks.
bench-smoke:
	$(GO) test -bench='BenchmarkLevelized|BenchmarkA1' -benchtime=10x -run=^$$ .
