GO ?= go

.PHONY: check vet build test race bench bench-smoke

## check: full gate — vet, build, and the test suite under the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-smoke: fast CI sanity pass over the scheduler benchmarks.
bench-smoke:
	$(GO) test -bench='BenchmarkLevelized|BenchmarkA1' -benchtime=10x -run=^$$ .
