package liberty_test

// serve_test.go covers the service surface re-exported through the lse
// facade and the PR's acceptance benchmark: stamping sessions over HTTP
// from a cached compiled program versus compiling per submission.

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"liberty/lse"
)

// serveMeshSpec is the 4x4 on-chip network the stamp benchmark serves —
// the same fabric as specs/mesh.lss, heavy enough that compile-per-point
// and stamp-per-point are visibly different regimes.
const serveMeshSpec = `let w = 4;
let h = 4;
let n = w * h;

# lse:ignore LSE002 -- the links close a loop; default control breaks it
instance net    : ccl.mesh(w = w, h = h, bufdepth = 4);
instance src[n] : ccl.pktsource(node = idx, nodes = n, rate = 0.1, size = 4);
instance snk[n] : pcl.sink();

for i in 0 .. n-1 {
    src[i].out -> net.in[i];
    net.out[i] -> snk[i].in;
}
`

// newServeBench starts a facade server over real HTTP.
func newServeBench(tb testing.TB) *lse.ServeClient {
	tb.Helper()
	srv, err := lse.NewServer(lse.ServerConfig{MaxSessions: 1 << 20})
	if err != nil {
		tb.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	tb.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return &lse.ServeClient{Base: hs.URL, HTTP: hs.Client()}
}

// TestServeFacade pins the lse re-exports end to end: submit through the
// facade types, stamp, step, observe, and match on the stable error
// codes.
func TestServeFacade(t *testing.T) {
	client := newServeBench(t)
	ctx := context.Background()
	prog, err := client.SubmitProgram(ctx, lse.SubmitProgramRequest{
		Spec: serveMeshSpec, Name: "mesh.lss",
	})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Instances == 0 || prog.Conns == 0 || prog.Fingerprint == "" {
		t.Fatalf("program info incomplete: %+v", prog)
	}
	sess, err := client.NewSession(ctx, prog.ID, lse.CreateSessionRequest{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Run(ctx, sess.ID, 50); err != nil {
		t.Fatal(err)
	}
	snap, err := client.Observe(ctx, sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cycles != 50 {
		t.Fatalf("observed %d cycles, want 50", snap.Cycles)
	}
	_, err = client.NewSession(ctx, "p0000000000000000", lse.CreateSessionRequest{})
	var apiErr *lse.ServeError
	if !errorAs(err, &apiErr) || apiErr.Code != lse.ErrorCode("LSD002") {
		t.Fatalf("unknown program answered %v, want LSD002", err)
	}
}

// errorAs is errors.As without importing errors twice in this file's
// minimal surface.
func errorAs(err error, target *(*lse.ServeError)) bool {
	e, ok := err.(*lse.ServeError)
	if ok {
		*target = e
	}
	return ok
}

// benchPoint feeds the compile sub-benchmark fresh cache keys across
// sub-runs so every submission truly compiles.
var benchPoint atomic.Int64

// BenchmarkSessionStampHTTP is the service-side Program/State payoff,
// measured as one parameter-sweep point each way: compile+stamp is what
// a cacheless server pays per point (a fresh define defeats the cache,
// so every session compiles its own program first), stamp is the served
// path (submission dedupes onto the cached program — pointer identity,
// pinned by the simd tests — and the session pays re-assembly only, no
// parse, Tarjan, levelization or lane election). submit-hit isolates
// the dedup round trip itself.
func BenchmarkSessionStampHTTP(b *testing.B) {
	client := newServeBench(b)
	ctx := context.Background()
	// warm re-submits the benchmark spec untimed: the compile sub-bench
	// churns the LRU with fresh keys, so each sub-bench re-anchors the
	// cached program (same key, hence same id) before its timed loop.
	warm := func(b *testing.B) lse.ProgramInfo {
		b.Helper()
		prog, err := client.SubmitProgram(ctx, lse.SubmitProgramRequest{Spec: serveMeshSpec})
		if err != nil {
			b.Fatal(err)
		}
		return prog
	}

	b.Run("compile+stamp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prog, err := client.SubmitProgram(ctx, lse.SubmitProgramRequest{
				Spec:    serveMeshSpec,
				Defines: map[string]any{"point": benchPoint.Add(1)},
			})
			if err != nil {
				b.Fatal(err)
			}
			sess, err := client.NewSession(ctx, prog.ID, lse.CreateSessionRequest{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if err := client.CloseSession(ctx, sess.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("submit-hit", func(b *testing.B) {
		prog := warm(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			info, err := client.SubmitProgram(ctx, lse.SubmitProgramRequest{Spec: serveMeshSpec})
			if err != nil {
				b.Fatal(err)
			}
			if !info.CacheHit || info.ID != prog.ID {
				b.Fatalf("submission missed the cache: %+v", info)
			}
		}
	})
	b.Run("stamp", func(b *testing.B) {
		prog := warm(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sess, err := client.NewSession(ctx, prog.ID, lse.CreateSessionRequest{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if err := client.CloseSession(ctx, sess.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}
