// The benchmark harness: one Benchmark per experiment in DESIGN.md's
// index (Figure 1, Figure 2(a)-(d), claims C1-C8, ablations A1-A2).
// EXPERIMENTS.md records the measured shapes against the paper's claims.
package liberty_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"liberty/internal/ccl"
	core "liberty/internal/core"
	"liberty/internal/isa"
	"liberty/internal/mono"
	"liberty/internal/obs"
	"liberty/internal/pcl"
	"liberty/internal/systems"
	"liberty/internal/upl"
	"liberty/lse"
)

func mustReadSpec(b *testing.B, path string) string {
	b.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	return string(src)
}

// BenchmarkFig1ConstructSimulator measures the Figure 1 pipeline: LSS in,
// executable simulator out (parse + elaborate + netlist checks).
func BenchmarkFig1ConstructSimulator(b *testing.B) {
	for _, spec := range []string{"specs/quickstart.lss", "specs/pipeline.lss", "specs/mesh.lss"} {
		src := mustReadSpec(b, spec)
		b.Run(spec, func(b *testing.B) {
			var instances int
			for i := 0; i < b.N; i++ {
				sim, err := lse.LoadLSS(src)
				if err != nil {
					b.Fatal(err)
				}
				instances = len(sim.Instances())
			}
			b.ReportMetric(float64(instances), "instances")
		})
	}
}

func runToDone(b *testing.B, sim *core.Sim, done func() bool, max uint64) uint64 {
	b.Helper()
	ok, err := sim.RunUntil(func(*core.Sim) bool { return done() }, max)
	if err != nil {
		b.Fatal(err)
	}
	if !ok {
		b.Fatalf("system did not finish within %d cycles", max)
	}
	return sim.Now()
}

// BenchmarkFig2aCMP simulates the Figure 2(a) chip multiprocessor to
// completion of its workload.
func BenchmarkFig2aCMP(b *testing.B) {
	var cycles uint64
	var latency float64
	for i := 0; i < b.N; i++ {
		bld := core.NewBuilder(core.WithSeed(1))
		cmp, err := systems.BuildCMP(bld, "cmp", systems.CMPCfg{W: 2, H: 2, RefsPer: 60, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		cycles = runToDone(b, sim, cmp.Done, 300_000)
		latency = cmp.MeanLatency()
	}
	b.ReportMetric(float64(cycles), "simcycles")
	b.ReportMetric(latency, "memlat_cycles")
}

// BenchmarkFig2bSensorNode simulates the Figure 2(b) sensor network until
// all samples drain.
func BenchmarkFig2bSensorNode(b *testing.B) {
	var delivered int64
	for i := 0; i < b.N; i++ {
		bld := core.NewBuilder(core.WithSeed(5))
		net, err := systems.BuildSensorNet(bld, "sn", 3, 20, 40)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		runToDone(b, sim, net.Exhausted, 200_000)
		delivered = net.Base.Received()
	}
	b.ReportMetric(float64(delivered), "readings")
}

// BenchmarkFig2cGrid simulates the Figure 2(c) grid-in-a-box (torus
// backplane) to completion.
func BenchmarkFig2cGrid(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		bld := core.NewBuilder(core.WithSeed(2))
		grid, err := systems.BuildCMP(bld, "grid", systems.CMPCfg{
			W: 4, H: 2, Torus: true, RefsPer: 40, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		cycles = runToDone(b, sim, grid.Done, 300_000)
	}
	b.ReportMetric(float64(cycles), "simcycles")
}

// BenchmarkFig2dSystemOfSystems simulates the Figure 2(d) hierarchy.
func BenchmarkFig2dSystemOfSystems(b *testing.B) {
	var summaries int64
	for i := 0; i < b.N; i++ {
		bld := core.NewBuilder(core.WithSeed(9))
		sos, err := systems.BuildSoS(bld, "sos", systems.SoSCfg{
			Clusters: 2, SensorsPer: 2, SamplesPer: 16, Threshold: 10, Batch: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		runToDone(b, sim, func() bool {
			return sos.Grid.Done() && sos.SummariesDelivered() >= 4
		}, 300_000)
		summaries = sos.SummariesDelivered()
	}
	b.ReportMetric(float64(summaries), "summaries")
}

// BenchmarkC1QueueReuse exercises the identical pcl.Queue template in its
// three §2.1 roles: router I/O buffer (FIFO), instruction window
// (dataflow-ready selection) and reorder buffer (completed-prefix
// selection), measuring simulated throughput in each role.
func BenchmarkC1QueueReuse(b *testing.B) {
	type role struct {
		name   string
		params core.Params
	}
	ready := map[int]bool{}
	windowSelect := pcl.SelectFn(func(entries []any) []int {
		var out []int
		for i, e := range entries {
			if ready[e.(int)%4] {
				out = append(out, i)
			}
		}
		return out
	})
	robSelect := pcl.SelectFn(func(entries []any) []int {
		var out []int
		for i, e := range entries {
			if !ready[e.(int)%4] {
				break
			}
			out = append(out, i)
		}
		return out
	})
	for k := 0; k < 4; k++ {
		ready[k] = true
	}
	roles := []role{
		{"router-buffer", core.Params{"capacity": 8}},
		{"instruction-window", core.Params{"capacity": 8, "select": windowSelect}},
		{"reorder-buffer", core.Params{"capacity": 8, "select": robSelect}},
	}
	for _, r := range roles {
		b.Run(r.name, func(b *testing.B) {
			bld := core.NewBuilder()
			src, err := pcl.NewSource("src", nil)
			if err != nil {
				b.Fatal(err)
			}
			q, err := pcl.NewQueue("q", r.params)
			if err != nil {
				b.Fatal(err)
			}
			snk, err := pcl.NewSink("snk", nil)
			if err != nil {
				b.Fatal(err)
			}
			bld.Add(src)
			bld.Add(q)
			bld.Add(snk)
			bld.Connect(src, "out", q, "in")
			bld.Connect(q, "out", snk, "in")
			sim, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(snk.Received())/float64(b.N), "items/cycle")
		})
	}
}

// BenchmarkC2MixedAbstraction drives the same crossbar with a statistical
// generator and with a detailed pipeline behind an NI.
func BenchmarkC2MixedAbstraction(b *testing.B) {
	b.Run("statistical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bld := core.NewBuilder(core.WithSeed(3))
			nw, err := ccl.BuildCrossbar(bld, "net", 2, 4)
			if err != nil {
				b.Fatal(err)
			}
			src, err := pcl.NewSource("gen", core.Params{
				"rate": 0.2, "count": 50,
				"gen": pcl.GenFn(func(rng *rand.Rand, cycle, seq uint64) (any, bool) {
					return &ccl.Packet{ID: seq, Src: 0, Dst: 1, Size: 2, Injected: cycle}, true
				}),
			})
			if err != nil {
				b.Fatal(err)
			}
			snk, _ := pcl.NewSink("snk", nil)
			drain, _ := pcl.NewSink("drain", nil)
			bld.Add(src)
			bld.Add(snk)
			bld.Add(drain)
			nw.ConnectSource(bld, 0, src, "out")
			nw.ConnectSink(bld, 1, snk, "in")
			nw.ConnectSink(bld, 0, drain, "in")
			sim, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			runToDone(b, sim, src.Exhausted, 100_000)
		}
	})
	b.Run("detailed-cpu-ni", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bld := core.NewBuilder(core.WithSeed(3))
			nw, err := ccl.BuildCrossbar(bld, "net", 2, 4)
			if err != nil {
				b.Fatal(err)
			}
			cpu, err := upl.NewInOrderCPU(bld, "cpu", isa.MustAssemble(isa.ProgSum), upl.CPUCfg{})
			if err != nil {
				b.Fatal(err)
			}
			ni := newCommitNI("ni", cpu)
			snk, _ := pcl.NewSink("snk", nil)
			drain, _ := pcl.NewSink("drain", nil)
			bld.Add(ni)
			bld.Add(snk)
			bld.Add(drain)
			nw.ConnectSource(bld, 0, ni, "out")
			nw.ConnectSink(bld, 1, snk, "in")
			nw.ConnectSink(bld, 0, drain, "in")
			sim, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			runToDone(b, sim, cpu.Done, 100_000)
		}
	})
}

// BenchmarkC4StructuralVsMonolithic compares host-time cost of the
// structural five-stage pipeline against the hand-written monolithic
// baseline on the same program — the overhead the paper's optimization
// work ([22]) attacks.
func BenchmarkC4StructuralVsMonolithic(b *testing.B) {
	prog := isa.MustAssemble(isa.ProgSum)
	b.Run("monolithic", func(b *testing.B) {
		var res mono.PipelineResult
		for i := 0; i < b.N; i++ {
			p, err := mono.NewPipeline(prog, upl.CPUCfg{})
			if err != nil {
				b.Fatal(err)
			}
			res, err = p.Run(1_000_000)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.IPC(), "ipc")
		b.ReportMetric(float64(res.Cycles), "simcycles")
	})
	b.Run("structural", func(b *testing.B) {
		var cycles uint64
		var ipc float64
		for i := 0; i < b.N; i++ {
			bld := core.NewBuilder()
			cpu, err := upl.NewInOrderCPU(bld, "cpu", prog, upl.CPUCfg{})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			cycles = runToDone(b, sim, cpu.Done, 1_000_000)
			ipc = cpu.IPC(sim)
		}
		b.ReportMetric(ipc, "ipc")
		b.ReportMetric(float64(cycles), "simcycles")
	})
}

// BenchmarkC5OrionSweep regenerates the Orion load/latency/power curve on
// an 8x8 mesh under uniform traffic (three representative points; run
// cmd/orion for the full table).
func BenchmarkC5OrionSweep(b *testing.B) {
	for _, rate := range []float64{0.05, 0.15, 0.3} {
		b.Run(fmt.Sprintf("rate=%.2f", rate), func(b *testing.B) {
			var pt ccl.SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = ccl.MeasurePoint(ccl.SweepCfg{
					W: 8, H: 8, Cycles: 1000, Seed: 1,
				}, rate)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.MeanLatency, "latency_cycles")
			b.ReportMetric(pt.Throughput, "pkts/node/cycle")
			b.ReportMetric(pt.PowerMw, "power_mW")
			b.ReportMetric(pt.DynamicMw, "dynamic_mW")
		})
	}
}

// BenchmarkC7NICThroughput measures the programmable NIC's receive-path
// packet rate against frame size — per-frame firmware overhead dominates
// small frames, DMA bandwidth dominates large ones.
func BenchmarkC7NICThroughput(b *testing.B) {
	for _, payload := range []int{46, 242, 1010, 1486} {
		b.Run(fmt.Sprintf("frame=%dB", payload+18), func(b *testing.B) {
			var framesPerKcycle float64
			for i := 0; i < b.N; i++ {
				framesPerKcycle = nicThroughput(b, payload, 30)
			}
			b.ReportMetric(framesPerKcycle, "frames/kcycle")
		})
	}
}

// BenchmarkA1ParallelScheduler measures host ns per simulated cycle of a
// 4x4 mesh under the sequential and parallel fixed-point schedulers.
func BenchmarkA1ParallelScheduler(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := []core.BuildOption{core.WithScheduler(core.SchedulerSequential)}
			if workers > 1 {
				opts = []core.BuildOption{core.WithScheduler(core.SchedulerParallel), core.WithWorkers(workers)}
			}
			sim := buildMeshTraffic(b, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// buildMeshTraffic assembles the 4x4 mesh under uniform traffic shared by
// the scheduler benchmarks.
func buildMeshTraffic(b testing.TB, opts ...core.BuildOption) *core.Sim {
	b.Helper()
	bld := core.NewBuilder(append(append([]core.BuildOption(nil), opts...), core.WithSeed(1))...)
	nw, err := ccl.BuildMesh(bld, "net", ccl.MeshCfg{W: 4, H: 4})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nw.Nodes; i++ {
		src, _ := pcl.NewSource(fmt.Sprintf("src%d", i), core.Params{
			"rate": 0.2,
			"gen":  ccl.PacketGen(i, nw.Nodes, ccl.UniformPattern, ccl.FixedSize(2)),
		})
		snk, _ := pcl.NewSink(fmt.Sprintf("snk%d", i), nil)
		bld.Add(src)
		bld.Add(snk)
		nw.ConnectSource(bld, i, src, "out")
		nw.ConnectSink(bld, i, snk, "in")
	}
	sim, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

// meshTrafficAssemble is buildMeshTraffic as a core.Compile recipe, so
// the Program/Sim benchmarks stamp sessions from one compiled netlist.
func meshTrafficAssemble(bld *core.Builder) error {
	nw, err := ccl.BuildMesh(bld, "net", ccl.MeshCfg{W: 4, H: 4})
	if err != nil {
		return err
	}
	for i := 0; i < nw.Nodes; i++ {
		src, err := pcl.NewSource(fmt.Sprintf("src%d", i), core.Params{
			"rate": 0.2,
			"gen":  ccl.PacketGen(i, nw.Nodes, ccl.UniformPattern, ccl.FixedSize(2)),
		})
		if err != nil {
			return err
		}
		snk, err := pcl.NewSink(fmt.Sprintf("snk%d", i), nil)
		if err != nil {
			return err
		}
		bld.Add(src)
		bld.Add(snk)
		if err := nw.ConnectSource(bld, i, src, "out"); err != nil {
			return err
		}
		if err := nw.ConnectSink(bld, i, snk, "in"); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkNewSimFromProgram measures the Program/State split's payoff:
// stamping a session from the compiled 4x4-mesh program (re-running only
// the assembly recipe — no Tarjan, levelization or lane election) versus
// compiling the whole program from scratch. The stamp path is what a
// thousand-session parameter sweep pays per point.
func BenchmarkNewSimFromProgram(b *testing.B) {
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prog, err := core.Compile(meshTrafficAssemble, core.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			_ = prog
		}
	})
	b.Run("stamp", func(b *testing.B) {
		prog, err := core.Compile(meshTrafficAssemble, core.WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim, err := prog.NewSim()
			if err != nil {
				b.Fatal(err)
			}
			sim.Close()
		}
	})
}

// benchScheduler steps sim b.N cycles and reports fixed-point iterations
// per simulated cycle — the work the static schedule removes.
func benchScheduler(b *testing.B, sim *core.Sim) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
	if m := sim.Metrics(); m != nil {
		b.ReportMetric(float64(m.FixedPointIters())/float64(b.N), "fpiters/cycle")
	}
}

// BenchmarkLevelizedPipeline compares the dynamic fixed-point path against
// the levelized static schedule on a 256-deep pipeline of handler-less
// modules — the netlist shape default control exists for (§2.1: modules
// may omit control code entirely). Every signal falls to default control;
// the sequential scanner's backward ack round degenerates to O(conns²)
// rescans while the static sweep resolves each level in order. The
// levelized engine must report zero fixed-point iterations: the chain is
// acyclic, so every default lands in the statically ordered sweep.
func BenchmarkLevelizedPipeline(b *testing.B) {
	b.Run("fixedpoint", func(b *testing.B) {
		benchScheduler(b, buildDefaultChain(b, 256,
			core.WithScheduler(core.SchedulerSequential), core.WithMetrics()))
	})
	b.Run("levelized", func(b *testing.B) {
		sim := buildDefaultChain(b, 256,
			core.WithScheduler(core.SchedulerLevelized), core.WithMetrics())
		benchScheduler(b, sim)
		if got := sim.Metrics().FixedPointIters(); got != 0 {
			b.Fatalf("acyclic chain reported %d fixed-point iterations, want 0", got)
		}
	})
}

// BenchmarkLevelizedMesh compares the same engines on a 16x16 torus mesh
// of handler-less modules: one large cyclic SCC where the residue
// worklist (dirty-signal seeded, precomputed dependency lists) replaces
// the sequential scanner's full-netlist eligibility rescans between cycle
// breaks.
func BenchmarkLevelizedMesh(b *testing.B) {
	b.Run("fixedpoint", func(b *testing.B) {
		benchScheduler(b, buildDefaultMesh(b, 16, 16,
			core.WithScheduler(core.SchedulerSequential), core.WithMetrics()))
	})
	b.Run("levelized", func(b *testing.B) {
		benchScheduler(b, buildDefaultMesh(b, 16, 16,
			core.WithScheduler(core.SchedulerLevelized), core.WithMetrics()))
	})
}

// BenchmarkWovenPipeline is the weaving acceptance gate on the 256-deep
// default-control pipeline: every connection is handler-free and
// control-free, so the woven plan compiles the entire netlist into
// constant replay — a steady cycle touches no per-connection state at
// all, against the levelized engine's full per-level interpreted sweep.
// The issue target is ≥2x over interpreted levelized at 0 allocs/op.
func BenchmarkWovenPipeline(b *testing.B) {
	b.Run("levelized", func(b *testing.B) {
		benchScheduler(b, buildDefaultChain(b, 256,
			core.WithScheduler(core.SchedulerLevelized), core.WithMetrics()))
	})
	b.Run("woven", func(b *testing.B) {
		benchScheduler(b, buildDefaultChain(b, 256,
			core.WithScheduler(core.SchedulerWoven), core.WithMetrics()))
	})
}

// BenchmarkWovenMesh runs the same comparison on a 16x16 acyclic grid —
// the torus's 2D fan-in/fan-out shape without its cyclic SCC. The torus
// itself is useless here (one big cycle is all interpreted residue, and
// both engines would run the identical worklist); the acyclic grid
// levelizes completely, so the woven engine replays all 480 connections
// while the levelized engine re-resolves them level by level.
func BenchmarkWovenMesh(b *testing.B) {
	b.Run("levelized", func(b *testing.B) {
		benchScheduler(b, buildDefaultAcyclicGrid(b, 16, 16,
			core.WithScheduler(core.SchedulerLevelized), core.WithMetrics()))
	})
	b.Run("woven", func(b *testing.B) {
		benchScheduler(b, buildDefaultAcyclicGrid(b, 16, 16,
			core.WithScheduler(core.SchedulerWoven), core.WithMetrics()))
	})
}

// BenchmarkSparseIdleMesh compares the levelized engine against the
// activity-gated sparse engine on a 16x16 torus of handler-less modules —
// a fully idle fabric. The levelized engine re-resolves all 512
// connections every cycle; the sparse engine resolves them once on the
// cycle-0 full sweep and replays, so a steady-state cycle touches no
// signal state at all.
func BenchmarkSparseIdleMesh(b *testing.B) {
	b.Run("levelized", func(b *testing.B) {
		benchScheduler(b, buildDefaultMesh(b, 16, 16,
			core.WithScheduler(core.SchedulerLevelized), core.WithMetrics()))
	})
	b.Run("sparse", func(b *testing.B) {
		benchScheduler(b, buildDefaultMesh(b, 16, 16,
			core.WithScheduler(core.SchedulerSparse), core.WithMetrics()))
	})
}

// BenchmarkSparseSensornet compares the engines on the mostly-idle shape
// activity gating targets: three low-rate sensor chains beside a 16x16
// passive fabric. Only the chains (a few percent of the netlist) pay
// per-cycle cost under the sparse engine.
func BenchmarkSparseSensornet(b *testing.B) {
	build := func(opts ...core.BuildOption) *core.Sim {
		return buildMostlyIdle(b, 3, 2, 16, 16, 0.05, 1<<40,
			append(opts, core.WithSeed(1), core.WithMetrics())...)
	}
	b.Run("levelized", func(b *testing.B) {
		benchScheduler(b, build(core.WithScheduler(core.SchedulerLevelized)))
	})
	b.Run("sparse", func(b *testing.B) {
		benchScheduler(b, build(core.WithScheduler(core.SchedulerSparse)))
	})
}

// BenchmarkTypedPipeline isolates payload-boxing cost on a payload-heavy
// pipeline: a 256-lane source → sink chain moving one uint64 per lane per
// cycle. The typed variant declares payload="uint64" end to end, so every
// value rides the scalar fast lane (SendUint64 stores, TransferredUint64
// reads) and a steady-state cycle performs zero heap allocations; the
// boxed variant moves the identical values through the []any spill lane,
// paying one interface allocation per item plus GC write barriers and a
// spill-hit count on every data-lane store. The chain is deliberately
// minimal — no intermediate buffering — so the measured difference is the
// per-item transport representation, not module bookkeeping.
func BenchmarkTypedPipeline(b *testing.B) {
	const width = 256
	run := func(b *testing.B, payload string, gen pcl.GenFn) {
		b.Helper()
		bld := core.NewBuilder(core.WithScheduler(core.SchedulerLevelized))
		srcParams := core.Params{"payload": payload}
		if gen != nil {
			srcParams["gen"] = gen
		}
		src, err := pcl.NewSource("src", srcParams)
		if err != nil {
			b.Fatal(err)
		}
		snk, err := pcl.NewSink("snk", core.Params{"payload": payload})
		if err != nil {
			b.Fatal(err)
		}
		bld.Add(src)
		bld.Add(snk)
		for i := 0; i < width; i++ {
			bld.Connect(src, "out", snk, "in")
		}
		sim, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sim.Step(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(snk.Received())/float64(b.N), "items/cycle")
		b.ReportMetric(float64(sim.SpillHits())/float64(b.N), "spills/cycle")
	}
	b.Run("typed", func(b *testing.B) {
		run(b, "uint64", nil) // default typed generator: the sequence number
	})
	b.Run("boxed", func(b *testing.B) {
		// The same values, boxed: seq is already a uint64, so the boxed
		// variant measures pure representation cost, not generator cost.
		run(b, "any", func(rng *rand.Rand, cycle, seq uint64) (any, bool) {
			return seq, true
		})
	})
}

// BenchmarkA2ContractCost isolates the 3-signal handshake's host cost: a
// three-stage queue chain under the engine versus the same FIFO dataflow
// as direct Go calls.
func BenchmarkA2ContractCost(b *testing.B) {
	b.Run("structural-handshake", func(b *testing.B) {
		bld := core.NewBuilder()
		src, _ := pcl.NewSource("src", nil)
		q1, _ := pcl.NewQueue("q1", core.Params{"capacity": 4})
		q2, _ := pcl.NewQueue("q2", core.Params{"capacity": 4})
		q3, _ := pcl.NewQueue("q3", core.Params{"capacity": 4})
		snk, _ := pcl.NewSink("snk", nil)
		bld.Add(src)
		bld.Add(q1)
		bld.Add(q2)
		bld.Add(q3)
		bld.Add(snk)
		bld.Connect(src, "out", q1, "in")
		bld.Connect(q1, "out", q2, "in")
		bld.Connect(q2, "out", q3, "in")
		bld.Connect(q3, "out", snk, "in")
		sim, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sim.Step(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(snk.Received())/float64(b.N), "items/cycle")
	})
	b.Run("direct-calls", func(b *testing.B) {
		// The same per-cycle dataflow, hand-inlined: three bounded FIFOs.
		var q1, q2, q3 []int
		const capQ = 4
		next := 0
		received := 0
		step := func() {
			if len(q3) > 0 {
				q3 = q3[1:]
				received++
			}
			if len(q2) > 0 && len(q3) < capQ {
				q3 = append(q3, q2[0])
				q2 = q2[1:]
			}
			if len(q1) > 0 && len(q2) < capQ {
				q2 = append(q2, q1[0])
				q1 = q1[1:]
			}
			if len(q1) < capQ {
				q1 = append(q1, next)
				next++
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
		b.ReportMetric(float64(received)/float64(b.N), "items/cycle")
	})
}

// BenchmarkA3Topology compares 16-node fabrics at the same offered load:
// mesh vs torus vs single-stage crossbar.
func BenchmarkA3Topology(b *testing.B) {
	build := map[string]func(bld *core.Builder) (*ccl.Network, error){
		"mesh-4x4": func(bld *core.Builder) (*ccl.Network, error) {
			return ccl.BuildMesh(bld, "net", ccl.MeshCfg{W: 4, H: 4})
		},
		"torus-4x4": func(bld *core.Builder) (*ccl.Network, error) {
			return ccl.BuildMesh(bld, "net", ccl.MeshCfg{W: 4, H: 4, Torus: true})
		},
		"xbar-16": func(bld *core.Builder) (*ccl.Network, error) {
			return ccl.BuildCrossbar(bld, "net", 16, 4)
		},
	}
	for _, name := range []string{"mesh-4x4", "torus-4x4", "xbar-16"} {
		b.Run(name, func(b *testing.B) {
			var lat float64
			var thr float64
			for i := 0; i < b.N; i++ {
				bld := core.NewBuilder(core.WithSeed(5))
				nw, err := build[name](bld)
				if err != nil {
					b.Fatal(err)
				}
				var sinks []*pcl.Sink
				for n := 0; n < nw.Nodes; n++ {
					src, _ := pcl.NewSource(fmt.Sprintf("src%d", n), core.Params{
						"rate": 0.1,
						"gen":  ccl.PacketGen(n, nw.Nodes, ccl.UniformPattern, ccl.FixedSize(2)),
					})
					snk, _ := pcl.NewSink(fmt.Sprintf("snk%d", n), nil)
					bld.Add(src)
					bld.Add(snk)
					nw.ConnectSource(bld, n, src, "out")
					nw.ConnectSink(bld, n, snk, "in")
					sinks = append(sinks, snk)
				}
				sim, err := bld.Build()
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.Run(1500); err != nil {
					b.Fatal(err)
				}
				var sum float64
				var cnt, recv int64
				for _, s := range sinks {
					recv += s.Received()
					h := sim.Stats().Histogram(s.Name() + ".latency")
					if h != nil {
						sum += h.Sum()
						cnt += h.Count()
					}
				}
				if cnt > 0 {
					lat = sum / float64(cnt)
				}
				thr = float64(recv) / 1500 / float64(nw.Nodes)
			}
			b.ReportMetric(lat, "latency_cycles")
			b.ReportMetric(thr, "pkts/node/cycle")
		})
	}
}

// BenchmarkA4VirtualChannels sweeps VC count on a mesh under transpose
// traffic (adversarial for XY routing): more VCs relieve head-of-line
// blocking at the cost of buffer area/leakage.
func BenchmarkA4VirtualChannels(b *testing.B) {
	for _, vcs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("vcs=%d", vcs), func(b *testing.B) {
			var lat, thr, leak float64
			for i := 0; i < b.N; i++ {
				bld := core.NewBuilder(core.WithSeed(7))
				nw, err := ccl.BuildMesh(bld, "net", ccl.MeshCfg{W: 4, H: 4, VCs: vcs})
				if err != nil {
					b.Fatal(err)
				}
				var sinks []*pcl.Sink
				for n := 0; n < nw.Nodes; n++ {
					src, _ := pcl.NewSource(fmt.Sprintf("src%d", n), core.Params{
						"rate": 0.15,
						"gen":  ccl.PacketGen(n, nw.Nodes, ccl.TransposePattern(4), ccl.FixedSize(2)),
					})
					snk, _ := pcl.NewSink(fmt.Sprintf("snk%d", n), nil)
					bld.Add(src)
					bld.Add(snk)
					nw.ConnectSource(bld, n, src, "out")
					nw.ConnectSink(bld, n, snk, "in")
					sinks = append(sinks, snk)
				}
				sim, err := bld.Build()
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.Run(1500); err != nil {
					b.Fatal(err)
				}
				var sum float64
				var cnt, recv int64
				for _, s := range sinks {
					recv += s.Received()
					h := sim.Stats().Histogram(s.Name() + ".latency")
					if h != nil {
						sum += h.Sum()
						cnt += h.Count()
					}
				}
				if cnt > 0 {
					lat = sum / float64(cnt)
				}
				thr = float64(recv) / 1500 / float64(nw.Nodes)
				leak = ccl.MeasurePower(sim, nw, ccl.DefaultPowerParams()).LeakageTotal()
			}
			b.ReportMetric(lat, "latency_cycles")
			b.ReportMetric(thr, "pkts/node/cycle")
			b.ReportMetric(leak, "leakage_mW")
		})
	}
}

// BenchmarkA5SampledSimulation compares full-detail against sampled
// simulation of the same program: host time drops with the detail share
// while the cycle estimate stays close.
func BenchmarkA5SampledSimulation(b *testing.B) {
	prog := isa.MustAssemble(isa.ProgLong)
	b.Run("full-detail", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			bld := core.NewBuilder()
			cpu, err := upl.NewInOrderCPU(bld, "cpu", prog, upl.CPUCfg{})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			cycles = runToDone(b, sim, cpu.Done, 5_000_000)
		}
		b.ReportMetric(float64(cycles), "simcycles")
	})
	b.Run("sampled-10pct", func(b *testing.B) {
		var res upl.SampledResult
		for i := 0; i < b.N; i++ {
			bld := core.NewBuilder()
			cpu, err := upl.NewInOrderCPU(bld, "cpu", prog, upl.CPUCfg{})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			res, err = upl.RunSampled(sim, cpu, upl.SampleCfg{DetailInsts: 300, SkipInsts: 2700})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.EstCycles), "simcycles")
		b.ReportMetric(res.DetailedShare, "detail_share")
	})
}

// BenchmarkObsOverhead quantifies the cost of the observability layer on
// the structural in-order pipeline from C4: "off" is the baseline every
// other benchmark pays (one nil check per scheduler event), "metrics"
// adds the atomic scheduler counters and sampled react timing, "events"
// additionally streams every resolution through a filtered ring tracer.
// Acceptance: off stays within 2% of the pre-observability engine.
func BenchmarkObsOverhead(b *testing.B) {
	prog := isa.MustAssemble(isa.ProgSum)
	run := func(b *testing.B, opts ...core.BuildOption) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			bld := core.NewBuilder(opts...)
			cpu, err := upl.NewInOrderCPU(bld, "cpu", prog, upl.CPUCfg{})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			runToDone(b, sim, cpu.Done, 1_000_000)
		}
	}
	b.Run("off", func(b *testing.B) { run(b) })
	b.Run("metrics", func(b *testing.B) { run(b, core.WithMetrics()) })
	b.Run("events", func(b *testing.B) {
		run(b, core.WithMetrics(),
			core.WithTracer(obs.NewEventTracer(4096).FilterInstances("cpu.*")))
	})
}

// BenchmarkDataflowAnalyze measures the whole-program dataflow analysis
// (the engine behind LSE009–LSE013 and WithDataflowPrune) over the 16x16
// torus mesh — one large cyclic SCC, the fixed-point engine's worst
// case: no finite round count converges, so the run pays the full
// iteration budget and then the SCC widening.
func BenchmarkDataflowAnalyze(b *testing.B) {
	sim := buildDefaultMesh(b, 16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.AnalyzeFlow(sim)
	}
}

// busyCell is a torus node with real per-react compute: every cycle it
// offers its state east and south, and reacting to the west/north
// arrivals runs a short xorshift spin before acking — the compute-bound
// shape the partitioned engine's worker-affine shards target. All four
// ports declare uint64 payloads, so the traffic rides the scalar fast
// lane and the benchmark measures scheduling plus compute, not boxing.
type busyCell struct {
	core.Base
	east, south *core.Port
	west, north *core.Port
	state       uint64
}

func newBusyCell(name string, seed uint64) *busyCell {
	c := &busyCell{state: seed | 1}
	c.Init(name, c)
	typed := core.PortOpts{MinWidth: 1, MaxWidth: 1, Payload: core.PayloadUint64}
	c.east = c.AddOutPort("e", typed)
	c.south = c.AddOutPort("s", typed)
	c.west = c.AddInPort("w", typed)
	c.north = c.AddInPort("n", typed)
	c.OnCycleStart(c.cycleStart)
	c.OnReact(c.react)
	c.OnCycleEnd(c.cycleEnd)
	return c
}

func (c *busyCell) cycleStart() {
	c.east.SendUint64(0, c.state)
	c.east.Enable(0)
	c.south.SendUint64(0, c.state^0x9e3779b97f4a7c15)
	c.south.Enable(0)
}

// churn is the per-arrival compute: a few hundred xorshift rounds —
// roughly the work of a small router's allocation pass.
func (c *busyCell) churn(v uint64) uint64 {
	x := v ^ c.state
	for i := 0; i < 400; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

func (c *busyCell) react() {
	for _, in := range [2]*core.Port{c.west, c.north} {
		if in.DataStatus(0) == core.Yes && !in.AckStatus(0).Known() {
			c.state ^= c.churn(in.Uint64(0))
			in.Ack(0)
		}
	}
}

func (c *busyCell) cycleEnd() {
	for _, in := range [2]*core.Port{c.west, c.north} {
		if v, ok := in.TransferredUint64(0); ok {
			c.state = c.state*6364136223846793005 + v
		}
	}
}

// busyTorusAssemble wires w×h busyCells into a torus (east and south
// neighbors, wrap-around) as a core.Compile recipe, so every worker
// count in BenchmarkPartitionedMesh stamps sessions from one compiled
// program and inherits the same partition.
func busyTorusAssemble(w, h int) func(*core.Builder) error {
	return func(bld *core.Builder) error {
		grid := make([][]*busyCell, h)
		for y := range grid {
			grid[y] = make([]*busyCell, w)
			for x := range grid[y] {
				grid[y][x] = newBusyCell(fmt.Sprintf("c%d_%d", y, x), uint64(y*w+x+1))
				bld.Add(grid[y][x])
			}
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if err := bld.Connect(grid[y][x], "e", grid[y][(x+1)%w], "w"); err != nil {
					return err
				}
				if err := bld.Connect(grid[y][x], "s", grid[(y+1)%h][x], "n"); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// BenchmarkPartitionedMesh is the partitioned engine's headline row: a
// 32x32 busy torus (1024 compute-bound cells, 2048 typed connections)
// compiled once with the partitioned scheduler, then stepped by sessions
// at 1, 2, 4 and 8 workers. The per-react xorshift spin gives the
// worker-affine shards real work to divide; on a multicore host the
// 8-worker row targets >=4x the 1-worker row, and on any host it must
// not be slower (the benchguard -notslower gate). Run with
// `make bench-par` to sweep -cpu 1,2,4,8.
func BenchmarkPartitionedMesh(b *testing.B) {
	prog, err := core.Compile(busyTorusAssemble(32, 32),
		core.WithScheduler(core.SchedulerPartitioned),
		core.WithShards(16),
		core.WithParallelThreshold(64))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sim, err := prog.NewSim(core.WithSeed(1), core.WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrunedMesh compares sparse sessions of the same mixed netlist
// — a few live low-rate chains beside many provably dead rate-0 chains —
// with and without WithDataflowPrune. Unpruned, every dead source's
// cycle-start handler and every dead instance's commit handler still run
// each cycle (cycle-start handlers are always-active seeds); pruned,
// that structure is deleted from the schedule and only replays its
// settled resolution.
func BenchmarkPrunedMesh(b *testing.B) {
	assemble := assemblePrunable(2, 16, 8)
	for _, tc := range []struct {
		name string
		opts []core.BuildOption
	}{
		{"unpruned", []core.BuildOption{core.WithScheduler(core.SchedulerSparse)}},
		{"pruned", []core.BuildOption{core.WithScheduler(core.SchedulerSparse), core.WithDataflowPrune()}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			prog, err := core.Compile(assemble, tc.opts...)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := prog.NewSim(core.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			benchScheduler(b, sim)
		})
	}
}
