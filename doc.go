// Package liberty is a Go reproduction of the Liberty Simulation
// Environment (LSE) from "Achieving Structural and Composable Modeling of
// Complex Systems" (August, Malik, Peh, Pai — IPDPS 2004): a structural,
// composable modeling system that constructs executable simulators from
// descriptions resembling the hardware, plus the component libraries
// (PCL, UPL, CCL/Orion, MPL, NIL) the paper describes.
//
// The public API lives in liberty/lse; the engine and libraries are under
// internal/; runnable systems are under examples/ and specs/; the
// benchmark harness in bench_test.go regenerates every figure and claim
// of the paper's evaluation (see EXPERIMENTS.md).
package liberty
